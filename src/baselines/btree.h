#ifndef LIDX_BASELINES_BTREE_H_
#define LIDX_BASELINES_BTREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/batch.h"
#include "common/invariants.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/prefetch.h"
#include "common/search.h"

namespace lidx {

// In-memory B+-tree: the traditional index that learned one-dimensional
// indexes are measured against (tutorial §1, §4). Fixed-capacity nodes,
// linked leaves for range scans, full delete with borrow/merge rebalancing,
// and a bulk-load path that packs leaves to a fill factor.
//
// Key must be totally ordered and cheaply copyable; Value cheaply copyable.
template <typename Key, typename Value, int kLeafCapacity = 64,
          int kInternalCapacity = 64>
class BPlusTree {
  static_assert(kLeafCapacity >= 4 && kInternalCapacity >= 4,
                "capacities too small for split/merge logic");

 public:
  BPlusTree() = default;
  ~BPlusTree() { Clear(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept { *this = std::move(other); }
  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = other.root_;
      size_ = other.size_;
      height_ = other.height_;
      simd_ = other.simd_;
      other.root_ = nullptr;
      other.size_ = 0;
      other.height_ = 0;
    }
    return *this;
  }

  // Bulk-loads from sorted, unique (key, value) pairs; replaces any existing
  // contents. fill_factor in (0, 1] controls leaf packing density.
  // build_threads > 1 constructs the (independent) leaves in parallel; the
  // leaf chunking is fixed by per_leaf, so the tree is identical to the
  // serial build for every thread count.
  void BulkLoad(const std::vector<std::pair<Key, Value>>& sorted,
                double fill_factor = 1.0, size_t build_threads = 1) {
    LIDX_CHECK(fill_factor > 0.0 && fill_factor <= 1.0);
    Clear();
    if (sorted.empty()) return;
    const int per_leaf = std::max(
        1, std::min(kLeafCapacity,
                    static_cast<int>(kLeafCapacity * fill_factor)));

    // Build leaf level: fill each fixed-size chunk into its own leaf, then
    // link the next pointers serially.
    const size_t chunk = static_cast<size_t>(per_leaf);
    const size_t num_leaves = (sorted.size() + chunk - 1) / chunk;
    std::vector<Node*> level(num_leaves, nullptr);
    std::vector<Key> level_keys(num_leaves);  // Minimum key of each node.
    ParallelForIndex(build_threads, num_leaves, [&](size_t l) {
      Leaf* leaf = new Leaf();
      const size_t base = l * chunk;
      const size_t take = std::min<size_t>(chunk, sorted.size() - base);
      for (size_t j = 0; j < take; ++j) {
        leaf->keys[j] = sorted[base + j].first;
        leaf->values[j] = sorted[base + j].second;
      }
      leaf->count = static_cast<int>(take);
      level[l] = leaf;
      level_keys[l] = leaf->keys[0];
    });
    for (size_t l = 0; l + 1 < num_leaves; ++l) {
      static_cast<Leaf*>(level[l])->next = static_cast<Leaf*>(level[l + 1]);
    }

    // Build internal levels bottom-up.
    height_ = 1;
    while (level.size() > 1) {
      std::vector<Node*> upper;
      std::vector<Key> upper_keys;
      size_t j = 0;
      while (j < level.size()) {
        Internal* node = new Internal();
        const size_t take =
            std::min<size_t>(kInternalCapacity, level.size() - j);
        for (size_t c = 0; c < take; ++c) {
          node->children[c] = level[j + c];
          node->keys[c] = level_keys[j + c];
        }
        node->count = static_cast<int>(take);
        upper.push_back(node);
        upper_keys.push_back(node->keys[0]);
        j += take;
      }
      level = std::move(upper);
      level_keys = std::move(upper_keys);
      ++height_;
    }
    root_ = level[0];
    size_ = sorted.size();
  }

  // Inserts or overwrites. Returns true if a new key was inserted, false if
  // an existing key's value was overwritten.
  bool Insert(const Key& key, const Value& value) {
    if (root_ == nullptr) {
      Leaf* leaf = new Leaf();
      leaf->keys[0] = key;
      leaf->values[0] = value;
      leaf->count = 1;
      root_ = leaf;
      height_ = 1;
      size_ = 1;
      return true;
    }
    Key split_key;
    Node* split_node = nullptr;
    bool inserted = false;
    InsertRecursive(root_, height_, key, value, &split_key, &split_node,
                    &inserted);
    if (split_node != nullptr) {
      Internal* new_root = new Internal();
      new_root->count = 2;
      new_root->children[0] = root_;
      new_root->keys[0] = MinKey(root_, height_);
      new_root->children[1] = split_node;
      new_root->keys[1] = split_key;
      root_ = new_root;
      ++height_;
    }
    if (inserted) ++size_;
    return inserted;
  }

  // Point lookup.
  std::optional<Value> Find(const Key& key) const {
    const Node* node = root_;
    if (node == nullptr) return std::nullopt;
    int level = height_;
    while (level > 1) {
      const Internal* in = static_cast<const Internal*>(node);
      node = in->children[ChildIndex(in, key)];
      --level;
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    const int pos = LeafLowerBound(leaf, key);
    if (pos < leaf->count && leaf->keys[pos] == key) {
      return leaf->values[pos];
    }
    return std::nullopt;
  }

  bool Contains(const Key& key) const { return Find(key).has_value(); }

  // Batched point lookups, the traditional-index counterpart of the
  // learned indexes' LookupBatch so throughput comparisons stay
  // apples-to-apples: out[i] = value for keys[i] or Value{} when absent.
  // Classic AMAC pointer-chase interleaving — each descent step prefetches
  // the child node's count and first binary-probe key lines, so up to G
  // tree walks have misses in flight per thread.
  template <size_t G = 16>
  void LookupBatch(const Key* keys, size_t count, Value* out) const {
    if (root_ == nullptr) {
      std::fill(out, out + count, Value{});
      return;
    }
    enum Stage { kDescend, kFetch };
    struct Cursor {
      Key key;
      size_t idx;
      const Node* node;
      int level;
      int pos;
      Stage stage;
    };
    auto prefetch_node = [](const Node* node, int level) {
      if (level > 1) {
        const Internal* in = static_cast<const Internal*>(node);
        LIDX_PREFETCH_READ(&in->count);
        LIDX_PREFETCH_READ(&in->keys[kInternalCapacity / 2]);
        LIDX_PREFETCH_READ(&in->keys[kInternalCapacity / 4]);
        LIDX_PREFETCH_READ(&in->keys[(3 * kInternalCapacity) / 4]);
      } else {
        const Leaf* leaf = static_cast<const Leaf*>(node);
        LIDX_PREFETCH_READ(&leaf->count);
        LIDX_PREFETCH_READ(&leaf->keys[kLeafCapacity / 2]);
        LIDX_PREFETCH_READ(&leaf->keys[kLeafCapacity / 4]);
        LIDX_PREFETCH_READ(&leaf->keys[(3 * kLeafCapacity) / 4]);
      }
    };
    InterleavedRun<G, Cursor>(
        count,
        [&](Cursor& c, size_t i) {
          c.idx = i;
          c.key = keys[i];
          c.node = root_;
          c.level = height_;
          c.stage = kDescend;
          // The root is shared by every lookup and stays resident; its
          // children are where the misses start.
        },
        [&](Cursor& c) -> bool {
          switch (c.stage) {
            case kDescend: {
              if (c.level > 1) {
                const Internal* in = static_cast<const Internal*>(c.node);
                c.node = in->children[ChildIndex(in, c.key)];
                --c.level;
                prefetch_node(c.node, c.level);
                return false;
              }
              const Leaf* leaf = static_cast<const Leaf*>(c.node);
              c.pos = LeafLowerBound(leaf, c.key);
              // The value array trails the key array by several lines.
              LIDX_PREFETCH_READ(&leaf->values[c.pos]);
              c.stage = kFetch;
              return false;
            }
            default: {
              const Leaf* leaf = static_cast<const Leaf*>(c.node);
              out[c.idx] = (c.pos < leaf->count && leaf->keys[c.pos] == c.key)
                               ? leaf->values[c.pos]
                               : Value{};
              return true;
            }
          }
        });
  }

  // Removes `key`. Returns true if it was present.
  bool Erase(const Key& key) {
    if (root_ == nullptr) return false;
    bool erased = EraseRecursive(root_, height_, key);
    if (!erased) return false;
    --size_;
    // Collapse a root with a single child (or drop an empty tree).
    while (height_ > 1 && static_cast<Internal*>(root_)->count == 1) {
      Internal* old = static_cast<Internal*>(root_);
      root_ = old->children[0];
      delete old;
      --height_;
    }
    if (height_ == 1 && static_cast<Leaf*>(root_)->count == 0) {
      delete static_cast<Leaf*>(root_);
      root_ = nullptr;
      height_ = 0;
    }
    return true;
  }

  // Appends all (key, value) pairs with lo <= key <= hi, in key order.
  void RangeScan(const Key& lo, const Key& hi,
                 std::vector<std::pair<Key, Value>>* out) const {
    const Node* node = root_;
    if (node == nullptr) return;
    int level = height_;
    while (level > 1) {
      const Internal* in = static_cast<const Internal*>(node);
      node = in->children[ChildIndex(in, lo)];
      --level;
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    int pos = LeafLowerBound(leaf, lo);
    while (leaf != nullptr) {
      for (; pos < leaf->count; ++pos) {
        if (leaf->keys[pos] > hi) return;
        out->emplace_back(leaf->keys[pos], leaf->values[pos]);
      }
      leaf = leaf->next;
      pos = 0;
    }
  }

  // Scans `n` entries starting at the first key >= lo (for YCSB-style scans).
  size_t ScanN(const Key& lo, size_t n,
               std::vector<std::pair<Key, Value>>* out) const {
    const Node* node = root_;
    if (node == nullptr) return 0;
    int level = height_;
    while (level > 1) {
      const Internal* in = static_cast<const Internal*>(node);
      node = in->children[ChildIndex(in, lo)];
      --level;
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    int pos = LeafLowerBound(leaf, lo);
    size_t got = 0;
    while (leaf != nullptr && got < n) {
      for (; pos < leaf->count && got < n; ++pos, ++got) {
        out->emplace_back(leaf->keys[pos], leaf->values[pos]);
      }
      leaf = leaf->next;
      pos = 0;
    }
    return got;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  // Route node-local searches through the SIMD kernel layer (common/simd.h)
  // when the key type is eligible. Results are identical either way; off =
  // scalar A/B baseline. The process-wide LIDX_SIMD env cap still applies.
  void set_simd(bool enabled) { simd_ = enabled; }
  bool simd() const { return simd_; }

  // Total heap footprint of all nodes (index size metric in benchmarks).
  size_t SizeBytes() const { return SizeBytesRecursive(root_, height_); }

  void Clear() {
    if (root_ != nullptr) {
      FreeRecursive(root_, height_);
      root_ = nullptr;
    }
    size_ = 0;
    height_ = 0;
  }

  // Validates structural invariants (sortedness, occupancy, separator keys,
  // leaf-chain integrity, entry count vs. size()); used by tests. Aborts on
  // violation.
  void CheckInvariants() const {
    if (root_ == nullptr) {
      LIDX_INVARIANT(size_ == 0 && height_ == 0, "btree: empty tree state");
      return;
    }
    Key dummy_lo{};
    CheckRecursive(root_, height_, /*has_lo=*/false, dummy_lo,
                   /*is_root=*/true);
    // The linked leaf level must enumerate every entry exactly once, in
    // globally strict key order, starting at the leftmost leaf.
    const Node* node = root_;
    for (int level = height_; level > 1; --level) {
      node = static_cast<const Internal*>(node)->children[0];
    }
    size_t entries = 0;
    bool has_prev = false;
    Key prev{};
    for (const Leaf* leaf = static_cast<const Leaf*>(node); leaf != nullptr;
         leaf = leaf->next) {
      for (int i = 0; i < leaf->count; ++i) {
        if (has_prev) {
          LIDX_INVARIANT(prev < leaf->keys[i], "btree: leaf chain sorted");
        }
        prev = leaf->keys[i];
        has_prev = true;
        ++entries;
      }
    }
    LIDX_INVARIANT(entries == size_, "btree: leaf chain matches size()");
  }

 private:
  struct Node {};

  struct Leaf : Node {
    Key keys[kLeafCapacity];
    Value values[kLeafCapacity];
    int count = 0;
    Leaf* next = nullptr;
  };

  struct Internal : Node {
    // keys[i] is the minimum key in the subtree of children[i].
    Key keys[kInternalCapacity];
    Node* children[kInternalCapacity];
    int count = 0;
  };

  int LeafLowerBound(const Leaf* leaf, const Key& key) const {
    return static_cast<int>(BoundedLowerBound(
        leaf->keys, key, 0, static_cast<size_t>(leaf->count), simd_));
  }

  // Index of the child whose subtree may contain `key`: the last child with
  // separator <= key (first child if key is below every separator).
  int ChildIndex(const Internal* node, const Key& key) const {
    const int ub = static_cast<int>(BoundedLowerBound(
        node->keys, key, 1, static_cast<size_t>(node->count), simd_));
    return (ub < node->count && node->keys[ub] == key) ? ub : ub - 1;
  }

  Key MinKey(const Node* node, int level) const {
    while (level > 1) {
      node = static_cast<const Internal*>(node)->children[0];
      --level;
    }
    return static_cast<const Leaf*>(node)->keys[0];
  }

  void InsertRecursive(Node* node, int level, const Key& key,
                       const Value& value, Key* split_key, Node** split_node,
                       bool* inserted) {
    if (level == 1) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const int pos = LeafLowerBound(leaf, key);
      if (pos < leaf->count && leaf->keys[pos] == key) {
        leaf->values[pos] = value;  // Overwrite.
        *inserted = false;
        return;
      }
      *inserted = true;
      if (leaf->count < kLeafCapacity) {
        ShiftInsertLeaf(leaf, pos, key, value);
        return;
      }
      // Split the leaf, then insert into the proper half.
      Leaf* right = new Leaf();
      const int move = leaf->count / 2;
      const int keep = leaf->count - move;
      for (int i = 0; i < move; ++i) {
        right->keys[i] = leaf->keys[keep + i];
        right->values[i] = leaf->values[keep + i];
      }
      right->count = move;
      leaf->count = keep;
      right->next = leaf->next;
      leaf->next = right;
      if (key < right->keys[0]) {
        ShiftInsertLeaf(leaf, LeafLowerBound(leaf, key), key, value);
      } else {
        ShiftInsertLeaf(right, LeafLowerBound(right, key), key, value);
      }
      *split_key = right->keys[0];
      *split_node = right;
      return;
    }

    Internal* in = static_cast<Internal*>(node);
    const int ci = ChildIndex(in, key);
    Key child_split_key;
    Node* child_split = nullptr;
    InsertRecursive(in->children[ci], level - 1, key, value, &child_split_key,
                    &child_split, inserted);
    // Keep separator exact if the key became the new minimum of child 0.
    if (ci == 0 && key < in->keys[0]) in->keys[0] = key;
    if (child_split == nullptr) return;

    if (in->count < kInternalCapacity) {
      ShiftInsertInternal(in, ci + 1, child_split_key, child_split);
      return;
    }
    // Split this internal node.
    Internal* right = new Internal();
    const int move = in->count / 2;
    const int keep = in->count - move;
    for (int i = 0; i < move; ++i) {
      right->keys[i] = in->keys[keep + i];
      right->children[i] = in->children[keep + i];
    }
    right->count = move;
    in->count = keep;
    if (child_split_key < right->keys[0]) {
      ShiftInsertInternal(in, ChildSlot(in, child_split_key), child_split_key,
                          child_split);
    } else {
      ShiftInsertInternal(right, ChildSlot(right, child_split_key),
                          child_split_key, child_split);
    }
    *split_key = right->keys[0];
    *split_node = right;
  }

  // Position where a new separator key belongs (first index with key >).
  static int ChildSlot(const Internal* node, const Key& key) {
    int i = 0;
    while (i < node->count && node->keys[i] < key) ++i;
    return i;
  }

  static void ShiftInsertLeaf(Leaf* leaf, int pos, const Key& key,
                              const Value& value) {
    LIDX_DCHECK(leaf->count < kLeafCapacity);
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
  }

  static void ShiftInsertInternal(Internal* node, int pos, const Key& key,
                                  Node* child) {
    LIDX_DCHECK(node->count < kInternalCapacity);
    for (int i = node->count; i > pos; --i) {
      node->keys[i] = node->keys[i - 1];
      node->children[i] = node->children[i - 1];
    }
    node->keys[pos] = key;
    node->children[pos] = child;
    ++node->count;
  }

  // Deletes `key` from the subtree; rebalances children on underflow.
  bool EraseRecursive(Node* node, int level, const Key& key) {
    if (level == 1) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const int pos = LeafLowerBound(leaf, key);
      if (pos >= leaf->count || !(leaf->keys[pos] == key)) return false;
      for (int i = pos; i + 1 < leaf->count; ++i) {
        leaf->keys[i] = leaf->keys[i + 1];
        leaf->values[i] = leaf->values[i + 1];
      }
      --leaf->count;
      return true;
    }
    Internal* in = static_cast<Internal*>(node);
    const int ci = ChildIndex(in, key);
    if (!EraseRecursive(in->children[ci], level - 1, key)) return false;
    RebalanceChild(in, ci, level);
    return true;
  }

  // Restores minimum occupancy of in->children[ci] by borrowing from or
  // merging with an adjacent sibling.
  void RebalanceChild(Internal* in, int ci, int level) {
    const int min_leaf = kLeafCapacity / 4;
    const int min_internal = kInternalCapacity / 4;
    if (level - 1 == 1) {
      Leaf* child = static_cast<Leaf*>(in->children[ci]);
      if (child->count >= min_leaf) {
        if (child->count > 0) in->keys[ci] = child->keys[0];
        return;
      }
      // Try borrow from right sibling, then left; else merge.
      if (ci + 1 < in->count) {
        Leaf* right = static_cast<Leaf*>(in->children[ci + 1]);
        if (right->count > min_leaf) {
          child->keys[child->count] = right->keys[0];
          child->values[child->count] = right->values[0];
          ++child->count;
          for (int i = 0; i + 1 < right->count; ++i) {
            right->keys[i] = right->keys[i + 1];
            right->values[i] = right->values[i + 1];
          }
          --right->count;
          in->keys[ci + 1] = right->keys[0];
          if (child->count > 0) in->keys[ci] = child->keys[0];
          return;
        }
      }
      if (ci > 0) {
        Leaf* left = static_cast<Leaf*>(in->children[ci - 1]);
        if (left->count > min_leaf) {
          for (int i = child->count; i > 0; --i) {
            child->keys[i] = child->keys[i - 1];
            child->values[i] = child->values[i - 1];
          }
          child->keys[0] = left->keys[left->count - 1];
          child->values[0] = left->values[left->count - 1];
          ++child->count;
          --left->count;
          in->keys[ci] = child->keys[0];
          return;
        }
      }
      // Merge with a sibling (guaranteed to fit: both are near-minimal).
      if (ci + 1 < in->count) {
        MergeLeaves(in, ci);
      } else if (ci > 0) {
        MergeLeaves(in, ci - 1);
      } else if (child->count > 0) {
        in->keys[ci] = child->keys[0];
      }
      return;
    }

    Internal* child = static_cast<Internal*>(in->children[ci]);
    if (child->count >= min_internal) {
      in->keys[ci] = child->keys[0];
      return;
    }
    if (ci + 1 < in->count) {
      Internal* right = static_cast<Internal*>(in->children[ci + 1]);
      if (right->count > min_internal) {
        child->keys[child->count] = right->keys[0];
        child->children[child->count] = right->children[0];
        ++child->count;
        for (int i = 0; i + 1 < right->count; ++i) {
          right->keys[i] = right->keys[i + 1];
          right->children[i] = right->children[i + 1];
        }
        --right->count;
        in->keys[ci + 1] = right->keys[0];
        in->keys[ci] = child->keys[0];
        return;
      }
    }
    if (ci > 0) {
      Internal* left = static_cast<Internal*>(in->children[ci - 1]);
      if (left->count > min_internal) {
        for (int i = child->count; i > 0; --i) {
          child->keys[i] = child->keys[i - 1];
          child->children[i] = child->children[i - 1];
        }
        child->keys[0] = left->keys[left->count - 1];
        child->children[0] = left->children[left->count - 1];
        ++child->count;
        --left->count;
        in->keys[ci] = child->keys[0];
        return;
      }
    }
    if (ci + 1 < in->count) {
      MergeInternals(in, ci);
    } else if (ci > 0) {
      MergeInternals(in, ci - 1);
    } else {
      in->keys[ci] = child->keys[0];
    }
  }

  // Merges children[i+1] into children[i] (leaf level) and drops slot i+1.
  void MergeLeaves(Internal* in, int i) {
    Leaf* left = static_cast<Leaf*>(in->children[i]);
    Leaf* right = static_cast<Leaf*>(in->children[i + 1]);
    if (left->count + right->count > kLeafCapacity) {
      // Cannot merge (can happen when the "underfull" child is the right
      // one and the left is full): rebalance by sharing instead.
      const int total = left->count + right->count;
      const int target_left = total / 2;
      if (left->count > target_left) {
        const int move = left->count - target_left;
        for (int j = right->count - 1; j >= 0; --j) {
          right->keys[j + move] = right->keys[j];
          right->values[j + move] = right->values[j];
        }
        for (int j = 0; j < move; ++j) {
          right->keys[j] = left->keys[target_left + j];
          right->values[j] = left->values[target_left + j];
        }
        right->count += move;
        left->count = target_left;
      } else {
        const int move = target_left - left->count;
        for (int j = 0; j < move; ++j) {
          left->keys[left->count + j] = right->keys[j];
          left->values[left->count + j] = right->values[j];
        }
        left->count += move;
        for (int j = 0; j + move < right->count; ++j) {
          right->keys[j] = right->keys[j + move];
          right->values[j] = right->values[j + move];
        }
        right->count -= move;
      }
      in->keys[i] = left->keys[0];
      in->keys[i + 1] = right->keys[0];
      return;
    }
    for (int j = 0; j < right->count; ++j) {
      left->keys[left->count + j] = right->keys[j];
      left->values[left->count + j] = right->values[j];
    }
    left->count += right->count;
    left->next = right->next;
    delete right;
    for (int j = i + 1; j + 1 < in->count; ++j) {
      in->keys[j] = in->keys[j + 1];
      in->children[j] = in->children[j + 1];
    }
    --in->count;
    if (left->count > 0) in->keys[i] = left->keys[0];
  }

  void MergeInternals(Internal* in, int i) {
    Internal* left = static_cast<Internal*>(in->children[i]);
    Internal* right = static_cast<Internal*>(in->children[i + 1]);
    if (left->count + right->count > kInternalCapacity) {
      const int total = left->count + right->count;
      const int target_left = total / 2;
      if (left->count > target_left) {
        const int move = left->count - target_left;
        for (int j = right->count - 1; j >= 0; --j) {
          right->keys[j + move] = right->keys[j];
          right->children[j + move] = right->children[j];
        }
        for (int j = 0; j < move; ++j) {
          right->keys[j] = left->keys[target_left + j];
          right->children[j] = left->children[target_left + j];
        }
        right->count += move;
        left->count = target_left;
      } else {
        const int move = target_left - left->count;
        for (int j = 0; j < move; ++j) {
          left->keys[left->count + j] = right->keys[j];
          left->children[left->count + j] = right->children[j];
        }
        left->count += move;
        for (int j = 0; j + move < right->count; ++j) {
          right->keys[j] = right->keys[j + move];
          right->children[j] = right->children[j + move];
        }
        right->count -= move;
      }
      in->keys[i] = left->keys[0];
      in->keys[i + 1] = right->keys[0];
      return;
    }
    for (int j = 0; j < right->count; ++j) {
      left->keys[left->count + j] = right->keys[j];
      left->children[left->count + j] = right->children[j];
    }
    left->count += right->count;
    delete right;
    for (int j = i + 1; j + 1 < in->count; ++j) {
      in->keys[j] = in->keys[j + 1];
      in->children[j] = in->children[j + 1];
    }
    --in->count;
    in->keys[i] = left->keys[0];
  }

  void FreeRecursive(Node* node, int level) {
    if (level == 1) {
      delete static_cast<Leaf*>(node);
      return;
    }
    Internal* in = static_cast<Internal*>(node);
    for (int i = 0; i < in->count; ++i) {
      FreeRecursive(in->children[i], level - 1);
    }
    delete in;
  }

  size_t SizeBytesRecursive(const Node* node, int level) const {
    if (node == nullptr) return 0;
    if (level == 1) return sizeof(Leaf);
    const Internal* in = static_cast<const Internal*>(node);
    size_t total = sizeof(Internal);
    for (int i = 0; i < in->count; ++i) {
      total += SizeBytesRecursive(in->children[i], level - 1);
    }
    return total;
  }

  void CheckRecursive(const Node* node, int level, bool has_lo, const Key& lo,
                      bool is_root) const {
    if (level == 1) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      if (!is_root) LIDX_CHECK(leaf->count >= 1);
      for (int i = 1; i < leaf->count; ++i) {
        LIDX_CHECK(leaf->keys[i - 1] < leaf->keys[i]);
      }
      if (has_lo && leaf->count > 0) LIDX_CHECK(!(leaf->keys[0] < lo));
      return;
    }
    const Internal* in = static_cast<const Internal*>(node);
    LIDX_CHECK(in->count >= (is_root ? 2 : 1));
    for (int i = 1; i < in->count; ++i) {
      LIDX_CHECK(in->keys[i - 1] < in->keys[i]);
    }
    for (int i = 0; i < in->count; ++i) {
      CheckRecursive(in->children[i], level - 1, /*has_lo=*/true, in->keys[i],
                     /*is_root=*/false);
    }
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;  // 0 = empty, 1 = single leaf.
  bool simd_ = true;
};

}  // namespace lidx

#endif  // LIDX_BASELINES_BTREE_H_
