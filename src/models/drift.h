#ifndef LIDX_MODELS_DRIFT_H_
#define LIDX_MODELS_DRIFT_H_

#include <cstddef>
#include <cstdint>

namespace lidx {

// Online drift detector for learned-index error streams (tutorial §6.3:
// "changes in the underlying input data/query distribution should be
// detected as soon as possible, and a model re-training process should be
// triggered"). Implements the Page-Hinkley test over observed prediction
// errors: it tracks the cumulative deviation of the error magnitude above
// its running mean and signals when the deviation exceeds `threshold` —
// i.e., when errors have *systematically* grown rather than merely
// spiked.
class ModelDriftDetector {
 public:
  struct Options {
    // Tolerated slack per observation before deviation accumulates.
    double delta = 0.5;
    // Cumulative deviation that constitutes drift (in error units).
    double threshold = 500.0;
    // Observations required before drift can fire (warm-up).
    size_t min_observations = 64;
  };

  ModelDriftDetector() : ModelDriftDetector(Options()) {}
  explicit ModelDriftDetector(const Options& options) : options_(options) {}

  // Feeds one observed |prediction - truth| error. Returns true when the
  // cumulative evidence crosses the drift threshold (and latches until
  // Reset()).
  bool Observe(double error) {
    ++count_;
    // Running mean via Welford.
    mean_ += (error - mean_) / static_cast<double>(count_);
    cumulative_ += error - mean_ - options_.delta;
    if (cumulative_ < min_cumulative_) min_cumulative_ = cumulative_;
    if (count_ >= options_.min_observations &&
        cumulative_ - min_cumulative_ > options_.threshold) {
      drifted_ = true;
    }
    return drifted_;
  }

  bool drifted() const { return drifted_; }
  size_t observations() const { return count_; }
  double mean_error() const { return mean_; }

  // Clears all state (call after retraining).
  void Reset() {
    count_ = 0;
    mean_ = 0.0;
    cumulative_ = 0.0;
    min_cumulative_ = 0.0;
    drifted_ = false;
  }

 private:
  Options options_;
  size_t count_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
  bool drifted_ = false;
};

}  // namespace lidx

#endif  // LIDX_MODELS_DRIFT_H_
