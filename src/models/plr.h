#ifndef LIDX_MODELS_PLR_H_
#define LIDX_MODELS_PLR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "models/linear_model.h"

namespace lidx {

// Piecewise-linear approximation (PLA) of a CDF with a hard error bound:
// for every input key, |segment.Predict(key) - true_position| <= epsilon.
// This is the core primitive behind the PGM-index family and
// FITing-tree-style delta indexes.

// One ε-bounded segment covering keys in [first_key, last_key].
struct PlaSegment {
  double first_key = 0.0;
  double last_key = 0.0;
  size_t first_pos = 0;   // Position of first covered key.
  LinearModel model;

  size_t PredictClamped(double key, size_t n) const {
    return model.PredictClamped(key, n);
  }
};

// Streaming "swing filter" segmentation. Maintains the interval of slopes
// [slope_lo, slope_hi] through the segment's origin that keep every covered
// point within ±epsilon; when the interval empties, the segment is emitted
// and a new one starts at the current point.
//
// The swing filter is not the minimum-segment-count optimal PLA (that is the
// O'Rourke/convex-hull construction used by the original PGM paper), but it
// is O(n), single-pass, and carries the identical ε-guarantee; it produces
// at most ~2x the optimal number of segments in practice, which only affects
// constant factors, not the invariants any caller relies on.
class SwingFilterBuilder {
 public:
  explicit SwingFilterBuilder(double epsilon) : epsilon_(epsilon) {
    LIDX_CHECK(epsilon >= 0.0);
  }

  // Keys must be fed in strictly increasing order; pos is the key's rank.
  void Add(double key, size_t pos) {
    LIDX_DCHECK(!active_ || key > last_key_);
    if (!active_) {
      StartSegment(key, pos);
      return;
    }
    const double dx = key - origin_key_;
    const double dy = static_cast<double>(pos) -
                      static_cast<double>(origin_pos_);
    // Slope interval admissible for this point alone.
    const double hi = (dy + epsilon_) / dx;
    const double lo = (dy - epsilon_) / dx;
    if (lo > slope_hi_ || hi < slope_lo_) {
      // No single slope covers all points: close out and restart here.
      EmitSegment();
      StartSegment(key, pos);
      return;
    }
    if (hi < slope_hi_) slope_hi_ = hi;
    if (lo > slope_lo_) slope_lo_ = lo;
    last_key_ = key;
    last_pos_ = pos;
  }

  // Closes the final segment and returns all segments.
  std::vector<PlaSegment> Finish() {
    if (active_) EmitSegment();
    active_ = false;
    return std::move(segments_);
  }

 private:
  void StartSegment(double key, size_t pos) {
    origin_key_ = key;
    origin_pos_ = pos;
    last_key_ = key;
    last_pos_ = pos;
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
    active_ = true;
  }

  void EmitSegment() {
    PlaSegment seg;
    seg.first_key = origin_key_;
    seg.last_key = last_key_;
    seg.first_pos = origin_pos_;
    double slope;
    if (slope_lo_ == -std::numeric_limits<double>::infinity()) {
      slope = 0.0;  // Single-point segment.
    } else {
      slope = (slope_lo_ + slope_hi_) / 2.0;
    }
    seg.model.slope = slope;
    seg.model.intercept =
        static_cast<double>(origin_pos_) - slope * origin_key_;
    segments_.push_back(seg);
  }

  double epsilon_;
  bool active_ = false;
  double origin_key_ = 0.0;
  size_t origin_pos_ = 0;
  double last_key_ = 0.0;
  size_t last_pos_ = 0;
  double slope_lo_ = 0.0;
  double slope_hi_ = 0.0;
  std::vector<PlaSegment> segments_;
};

// Convenience: segment an entire sorted key array.
template <typename Vec>
std::vector<PlaSegment> BuildPla(const Vec& keys, double epsilon) {
  SwingFilterBuilder builder(epsilon);
  double prev = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < keys.size(); ++i) {
    const double k = static_cast<double>(keys[i]);
    LIDX_CHECK(k > prev);  // Keys must be strictly increasing.
    builder.Add(k, i);
    prev = k;
  }
  return builder.Finish();
}

// Blocked parallel segmentation: split [0, n) into at most `threads`
// contiguous blocks, run an independent swing filter per block (ranks stay
// global), and concatenate the per-block segment lists in block order.
//
// The seam argument for why ε is preserved: every segment is emitted by
// *some* block's swing filter, which certifies |predict(key) - rank| <= ε
// for exactly the keys it covered — the global ranks fed to it. A block
// boundary only forces the filter to restart, which can add up to one
// extra segment per seam, never loosen a bound. The span between a block's
// last key and the next block's first key contains no data keys, so no key
// is ever attributed to a segment trained without it. Lookups that binary
// search segment first-keys are therefore exactly as accurate; the only
// observable difference from the serial build is the (slightly larger)
// segment count.
//
// With threads <= 1 this is exactly BuildPla. Block boundaries depend only
// on (threads, n), so a given thread count reproduces bit-identical
// segments on any machine.
template <typename Vec>
std::vector<PlaSegment> BuildPlaBlocked(const Vec& keys, double epsilon,
                                        size_t threads) {
  static constexpr size_t kMinBlock = size_t{1} << 12;
  const size_t n = keys.size();
  const size_t blocks =
      (threads <= 1) ? 1
                     : std::min(threads, std::max<size_t>(1, n / kMinBlock));
  if (blocks <= 1) return BuildPla(keys, epsilon);
  std::vector<std::vector<PlaSegment>> per_block(blocks);
  ParallelForIndex(threads, blocks, [&](size_t b) {
    const size_t lo = b * n / blocks;
    const size_t hi = (b + 1) * n / blocks;
    SwingFilterBuilder builder(epsilon);
    double prev = -std::numeric_limits<double>::infinity();
    for (size_t i = lo; i < hi; ++i) {
      const double k = static_cast<double>(keys[i]);
      LIDX_CHECK(k > prev);  // Keys must be strictly increasing.
      builder.Add(k, i);
      prev = k;
    }
    per_block[b] = builder.Finish();
  });
  std::vector<PlaSegment> segments;
  for (std::vector<PlaSegment>& segs : per_block) {
    segments.insert(segments.end(), segs.begin(), segs.end());
  }
  return segments;
}

// BuildPlaBlocked for sorted keys *with duplicates*: the model trains on
// first occurrences only (duplicates are handled by the caller's fix-up
// search widening). The serial path reproduces the classic
// "skip if equal to the previously added key" loop exactly: on a sorted
// array, keys[i] equals the previously added key iff keys[i] == keys[i-1],
// so the block-local rule needs no cross-block state.
template <typename Vec>
std::vector<PlaSegment> BuildPlaDedupBlocked(const Vec& keys, double epsilon,
                                             size_t threads) {
  static constexpr size_t kMinBlock = size_t{1} << 12;
  const size_t n = keys.size();
  const size_t blocks =
      (threads <= 1) ? 1
                     : std::min(threads, std::max<size_t>(1, n / kMinBlock));
  std::vector<std::vector<PlaSegment>> per_block(blocks);
  ParallelForIndex(threads, blocks, [&](size_t b) {
    const size_t lo = b * n / blocks;
    const size_t hi = (b + 1) * n / blocks;
    SwingFilterBuilder builder(epsilon);
    for (size_t i = lo; i < hi; ++i) {
      if (i > 0 && keys[i] == keys[i - 1]) continue;
      builder.Add(static_cast<double>(keys[i]), i);
    }
    per_block[b] = builder.Finish();
  });
  std::vector<PlaSegment> segments;
  for (std::vector<PlaSegment>& segs : per_block) {
    segments.insert(segments.end(), segs.begin(), segs.end());
  }
  return segments;
}

// ----- Greedy spline corridor (RadixSpline's CDF model) -----

// A spline knot: (key, position). Between consecutive knots, positions are
// linearly interpolated; the greedy corridor construction guarantees the
// interpolation error is <= epsilon at every input key.
struct SplineKnot {
  double key = 0.0;
  double pos = 0.0;
};

class GreedySplineBuilder {
 public:
  explicit GreedySplineBuilder(double epsilon) : epsilon_(epsilon) {
    LIDX_CHECK(epsilon >= 0.0);
  }

  void Add(double key, size_t pos) {
    const double y = static_cast<double>(pos);
    if (knots_.empty()) {
      knots_.push_back({key, y});
      have_prev_ = false;
      return;
    }
    if (!have_prev_) {
      // Second point of the current spline segment: initialize the corridor.
      prev_key_ = key;
      prev_pos_ = y;
      const double dx = key - knots_.back().key;
      upper_ = (y + epsilon_ - knots_.back().pos) / dx;
      lower_ = (y - epsilon_ - knots_.back().pos) / dx;
      have_prev_ = true;
      return;
    }
    const double base_key = knots_.back().key;
    const double base_pos = knots_.back().pos;
    const double dx = key - base_key;
    const double slope = (y - base_pos) / dx;
    if (slope > upper_ || slope < lower_) {
      // The line to this point leaves the corridor: the previous point
      // becomes a knot, and the corridor restarts from it through this point.
      knots_.push_back({prev_key_, prev_pos_});
      const double ndx = key - prev_key_;
      upper_ = (y + epsilon_ - prev_pos_) / ndx;
      lower_ = (y - epsilon_ - prev_pos_) / ndx;
      prev_key_ = key;
      prev_pos_ = y;
      return;
    }
    // Narrow the corridor with this point's admissible slopes.
    const double hi = (y + epsilon_ - base_pos) / dx;
    const double lo = (y - epsilon_ - base_pos) / dx;
    if (hi < upper_) upper_ = hi;
    if (lo > lower_) lower_ = lo;
    prev_key_ = key;
    prev_pos_ = y;
  }

  std::vector<SplineKnot> Finish() {
    if (have_prev_) knots_.push_back({prev_key_, prev_pos_});
    have_prev_ = false;
    return std::move(knots_);
  }

 private:
  double epsilon_;
  std::vector<SplineKnot> knots_;
  bool have_prev_ = false;
  double prev_key_ = 0.0;
  double prev_pos_ = 0.0;
  double upper_ = 0.0;
  double lower_ = 0.0;
};

// Blocked parallel spline construction, mirroring BuildPlaBlocked: an
// independent greedy corridor per contiguous key block (global ranks),
// knot lists concatenated in block order. Each block's spline starts with
// a knot pinned at its first key and ends with one pinned at its last key
// (GreedySplineBuilder::Finish), so the concatenation interpolates every
// in-block key within ε and every seam span [block b's last key, block
// b+1's first key] contains no data keys at all — the ε-guarantee holds
// vacuously there. Knot keys stay strictly increasing across the seam
// because the blocks partition a strictly sorted array. Serial path
// (threads <= 1) is the exact single-corridor pass.
template <typename Vec>
std::vector<SplineKnot> BuildSplineBlocked(const Vec& keys, double epsilon,
                                           size_t threads) {
  static constexpr size_t kMinBlock = size_t{1} << 12;
  const size_t n = keys.size();
  const size_t blocks =
      (threads <= 1) ? 1
                     : std::min(threads, std::max<size_t>(1, n / kMinBlock));
  if (blocks <= 1) {
    GreedySplineBuilder builder(epsilon);
    for (size_t i = 0; i < n; ++i) {
      LIDX_DCHECK(i == 0 ||
                  static_cast<double>(keys[i - 1]) <
                      static_cast<double>(keys[i]));
      builder.Add(static_cast<double>(keys[i]), i);
    }
    return builder.Finish();
  }
  std::vector<std::vector<SplineKnot>> per_block(blocks);
  ParallelForIndex(threads, blocks, [&](size_t b) {
    const size_t lo = b * n / blocks;
    const size_t hi = (b + 1) * n / blocks;
    GreedySplineBuilder builder(epsilon);
    for (size_t i = lo; i < hi; ++i) {
      builder.Add(static_cast<double>(keys[i]), i);
    }
    per_block[b] = builder.Finish();
  });
  std::vector<SplineKnot> knots;
  for (std::vector<SplineKnot>& k : per_block) {
    knots.insert(knots.end(), k.begin(), k.end());
  }
  return knots;
}

}  // namespace lidx

#endif  // LIDX_MODELS_PLR_H_
