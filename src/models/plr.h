#ifndef LIDX_MODELS_PLR_H_
#define LIDX_MODELS_PLR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "models/linear_model.h"

namespace lidx {

// Piecewise-linear approximation (PLA) of a CDF with a hard error bound:
// for every input key, |segment.Predict(key) - true_position| <= epsilon.
// This is the core primitive behind the PGM-index family and
// FITing-tree-style delta indexes.

// One ε-bounded segment covering keys in [first_key, last_key].
struct PlaSegment {
  double first_key = 0.0;
  double last_key = 0.0;
  size_t first_pos = 0;   // Position of first covered key.
  LinearModel model;

  size_t PredictClamped(double key, size_t n) const {
    return model.PredictClamped(key, n);
  }
};

// Streaming "swing filter" segmentation. Maintains the interval of slopes
// [slope_lo, slope_hi] through the segment's origin that keep every covered
// point within ±epsilon; when the interval empties, the segment is emitted
// and a new one starts at the current point.
//
// The swing filter is not the minimum-segment-count optimal PLA (that is the
// O'Rourke/convex-hull construction used by the original PGM paper), but it
// is O(n), single-pass, and carries the identical ε-guarantee; it produces
// at most ~2x the optimal number of segments in practice, which only affects
// constant factors, not the invariants any caller relies on.
class SwingFilterBuilder {
 public:
  explicit SwingFilterBuilder(double epsilon) : epsilon_(epsilon) {
    LIDX_CHECK(epsilon >= 0.0);
  }

  // Keys must be fed in strictly increasing order; pos is the key's rank.
  void Add(double key, size_t pos) {
    LIDX_DCHECK(!active_ || key > last_key_);
    if (!active_) {
      StartSegment(key, pos);
      return;
    }
    const double dx = key - origin_key_;
    const double dy = static_cast<double>(pos) -
                      static_cast<double>(origin_pos_);
    // Slope interval admissible for this point alone.
    const double hi = (dy + epsilon_) / dx;
    const double lo = (dy - epsilon_) / dx;
    if (lo > slope_hi_ || hi < slope_lo_) {
      // No single slope covers all points: close out and restart here.
      EmitSegment();
      StartSegment(key, pos);
      return;
    }
    if (hi < slope_hi_) slope_hi_ = hi;
    if (lo > slope_lo_) slope_lo_ = lo;
    last_key_ = key;
    last_pos_ = pos;
  }

  // Closes the final segment and returns all segments.
  std::vector<PlaSegment> Finish() {
    if (active_) EmitSegment();
    active_ = false;
    return std::move(segments_);
  }

 private:
  void StartSegment(double key, size_t pos) {
    origin_key_ = key;
    origin_pos_ = pos;
    last_key_ = key;
    last_pos_ = pos;
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
    active_ = true;
  }

  void EmitSegment() {
    PlaSegment seg;
    seg.first_key = origin_key_;
    seg.last_key = last_key_;
    seg.first_pos = origin_pos_;
    double slope;
    if (slope_lo_ == -std::numeric_limits<double>::infinity()) {
      slope = 0.0;  // Single-point segment.
    } else {
      slope = (slope_lo_ + slope_hi_) / 2.0;
    }
    seg.model.slope = slope;
    seg.model.intercept =
        static_cast<double>(origin_pos_) - slope * origin_key_;
    segments_.push_back(seg);
  }

  double epsilon_;
  bool active_ = false;
  double origin_key_ = 0.0;
  size_t origin_pos_ = 0;
  double last_key_ = 0.0;
  size_t last_pos_ = 0;
  double slope_lo_ = 0.0;
  double slope_hi_ = 0.0;
  std::vector<PlaSegment> segments_;
};

// Convenience: segment an entire sorted key array.
template <typename Vec>
std::vector<PlaSegment> BuildPla(const Vec& keys, double epsilon) {
  SwingFilterBuilder builder(epsilon);
  double prev = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < keys.size(); ++i) {
    const double k = static_cast<double>(keys[i]);
    LIDX_CHECK(k > prev);  // Keys must be strictly increasing.
    builder.Add(k, i);
    prev = k;
  }
  return builder.Finish();
}

// ----- Greedy spline corridor (RadixSpline's CDF model) -----

// A spline knot: (key, position). Between consecutive knots, positions are
// linearly interpolated; the greedy corridor construction guarantees the
// interpolation error is <= epsilon at every input key.
struct SplineKnot {
  double key = 0.0;
  double pos = 0.0;
};

class GreedySplineBuilder {
 public:
  explicit GreedySplineBuilder(double epsilon) : epsilon_(epsilon) {
    LIDX_CHECK(epsilon >= 0.0);
  }

  void Add(double key, size_t pos) {
    const double y = static_cast<double>(pos);
    if (knots_.empty()) {
      knots_.push_back({key, y});
      have_prev_ = false;
      return;
    }
    if (!have_prev_) {
      // Second point of the current spline segment: initialize the corridor.
      prev_key_ = key;
      prev_pos_ = y;
      const double dx = key - knots_.back().key;
      upper_ = (y + epsilon_ - knots_.back().pos) / dx;
      lower_ = (y - epsilon_ - knots_.back().pos) / dx;
      have_prev_ = true;
      return;
    }
    const double base_key = knots_.back().key;
    const double base_pos = knots_.back().pos;
    const double dx = key - base_key;
    const double slope = (y - base_pos) / dx;
    if (slope > upper_ || slope < lower_) {
      // The line to this point leaves the corridor: the previous point
      // becomes a knot, and the corridor restarts from it through this point.
      knots_.push_back({prev_key_, prev_pos_});
      const double ndx = key - prev_key_;
      upper_ = (y + epsilon_ - prev_pos_) / ndx;
      lower_ = (y - epsilon_ - prev_pos_) / ndx;
      prev_key_ = key;
      prev_pos_ = y;
      return;
    }
    // Narrow the corridor with this point's admissible slopes.
    const double hi = (y + epsilon_ - base_pos) / dx;
    const double lo = (y - epsilon_ - base_pos) / dx;
    if (hi < upper_) upper_ = hi;
    if (lo > lower_) lower_ = lo;
    prev_key_ = key;
    prev_pos_ = y;
  }

  std::vector<SplineKnot> Finish() {
    if (have_prev_) knots_.push_back({prev_key_, prev_pos_});
    have_prev_ = false;
    return std::move(knots_);
  }

 private:
  double epsilon_;
  std::vector<SplineKnot> knots_;
  bool have_prev_ = false;
  double prev_key_ = 0.0;
  double prev_pos_ = 0.0;
  double upper_ = 0.0;
  double lower_ = 0.0;
};

}  // namespace lidx

#endif  // LIDX_MODELS_PLR_H_
