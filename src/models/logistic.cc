#include "models/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace lidx {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LogisticModel::LogisticModel(int num_harmonics)
    : num_harmonics_(num_harmonics) {
  LIDX_CHECK(num_harmonics >= 0);
  weights_.assign(2 + 2 * static_cast<size_t>(num_harmonics), 0.0);
}

void LogisticModel::Featurize(uint64_t key, std::vector<double>* out) const {
  const double x =
      (static_cast<double>(key) - key_min_) * key_scale_;
  out->clear();
  out->push_back(1.0);
  out->push_back(x);
  for (int k = 1; k <= num_harmonics_; ++k) {
    out->push_back(std::sin(kTwoPi * k * x));
    out->push_back(std::cos(kTwoPi * k * x));
  }
}

void LogisticModel::Train(const std::vector<uint64_t>& positives,
                          const std::vector<uint64_t>& negatives, int epochs,
                          double learning_rate, uint64_t seed) {
  LIDX_CHECK(!positives.empty());
  LIDX_CHECK(!negatives.empty());
  uint64_t mn = UINT64_MAX, mx = 0;
  for (uint64_t k : positives) {
    mn = std::min(mn, k);
    mx = std::max(mx, k);
  }
  for (uint64_t k : negatives) {
    mn = std::min(mn, k);
    mx = std::max(mx, k);
  }
  key_min_ = static_cast<double>(mn);
  key_scale_ = (mx > mn) ? 1.0 / (static_cast<double>(mx) -
                                  static_cast<double>(mn))
                         : 1.0;

  // Interleaved SGD over shuffled samples; labels 1 for members.
  struct Sample {
    uint64_t key;
    double label;
  };
  std::vector<Sample> samples;
  samples.reserve(positives.size() + negatives.size());
  for (uint64_t k : positives) samples.push_back({k, 1.0});
  for (uint64_t k : negatives) samples.push_back({k, 0.0});

  Rng rng(seed);
  std::vector<double> feat;
  for (int e = 0; e < epochs; ++e) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = samples.size(); i > 1; --i) {
      std::swap(samples[i - 1], samples[rng.NextBounded(i)]);
    }
    const double lr = learning_rate / (1.0 + 0.5 * e);
    for (const Sample& s : samples) {
      Featurize(s.key, &feat);
      double z = 0.0;
      for (size_t j = 0; j < weights_.size(); ++j) z += weights_[j] * feat[j];
      const double err = Sigmoid(z) - s.label;
      for (size_t j = 0; j < weights_.size(); ++j) {
        weights_[j] -= lr * err * feat[j];
      }
    }
  }
}

double LogisticModel::Predict(uint64_t key) const {
  std::vector<double> feat;
  Featurize(key, &feat);
  double z = 0.0;
  for (size_t j = 0; j < weights_.size(); ++j) z += weights_[j] * feat[j];
  return Sigmoid(z);
}

}  // namespace lidx
