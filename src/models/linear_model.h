#ifndef LIDX_MODELS_LINEAR_MODEL_H_
#define LIDX_MODELS_LINEAR_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace lidx {

struct LinearModel;

// Mergeable least-squares sums for a key -> position fit. Callers feed
// centered x values (subtract a shared x0 before Add) so uint64-range keys
// do not cancel catastrophically, then Solve(x0) recovers the line in the
// original coordinates. Because accumulators over disjoint slices merge by
// plain addition, a fit can be computed blockwise — serially or in
// parallel — and yields the same sums as long as the block decomposition
// and merge order are fixed.
struct FitAccumulator {
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  size_t n = 0;

  void Add(double x, double y) {
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }

  void Merge(const FitAccumulator& o) {
    sum_x += o.sum_x;
    sum_y += o.sum_y;
    sum_xx += o.sum_xx;
    sum_xy += o.sum_xy;
    n += o.n;
  }

  // Solves for the line through the accumulated points; x0 is the shared
  // centering offset. Defined below LinearModel.
  inline LinearModel Solve(double x0) const;
};

// y = slope * x + intercept. The workhorse model of nearly every learned
// index: cheap to train (closed form), two multiplies-adds to evaluate, and
// trivially serializable.
struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(double x) const { return slope * x + intercept; }

  // Predicts and clamps to [0, n); convenience for position prediction.
  size_t PredictClamped(double x, size_t n) const {
    const double p = Predict(x);
    if (p <= 0.0) return 0;
    if (p >= static_cast<double>(n - 1)) return n - 1;
    return static_cast<size_t>(p);
  }

  // Least-squares fit over (keys[i] -> i) for i in [begin, end). Any
  // random-access container of arithmetic keys works.
  template <typename Vec>
  static LinearModel FitToPositions(const Vec& keys, size_t begin,
                                    size_t end) {
    LinearModel m;
    const size_t n = end - begin;
    if (n == 0) return m;
    if (n == 1) {
      m.slope = 0.0;
      m.intercept = static_cast<double>(begin);
      return m;
    }
    // Accumulate in double; keys can be uint64 so center them first to
    // limit catastrophic cancellation.
    const double x0 = static_cast<double>(keys[begin]);
    FitAccumulator acc;
    for (size_t i = begin; i < end; ++i) {
      acc.Add(static_cast<double>(keys[i]) - x0, static_cast<double>(i));
    }
    return acc.Solve(x0);
  }

  // Exact line through two (x, y) points.
  static LinearModel ThroughPoints(double x1, double y1, double x2,
                                   double y2) {
    LinearModel m;
    if (x2 == x1) {
      m.slope = 0.0;
      m.intercept = y1;
    } else {
      m.slope = (y2 - y1) / (x2 - x1);
      m.intercept = y1 - m.slope * x1;
    }
    return m;
  }
};

inline LinearModel FitAccumulator::Solve(double x0) const {
  LinearModel m;
  if (n == 0) return m;
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_xx - sum_x * sum_x;
  if (denom <= 0.0) {
    // All keys equal (or numerically so): flat model at the mean position.
    m.slope = 0.0;
    m.intercept = sum_y / dn;
    return m;
  }
  m.slope = (dn * sum_xy - sum_x * sum_y) / denom;
  m.intercept = (sum_y - m.slope * sum_x) / dn - m.slope * x0;
  return m;
}

}  // namespace lidx

#endif  // LIDX_MODELS_LINEAR_MODEL_H_
