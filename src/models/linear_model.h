#ifndef LIDX_MODELS_LINEAR_MODEL_H_
#define LIDX_MODELS_LINEAR_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace lidx {

// y = slope * x + intercept. The workhorse model of nearly every learned
// index: cheap to train (closed form), two multiplies-adds to evaluate, and
// trivially serializable.
struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(double x) const { return slope * x + intercept; }

  // Predicts and clamps to [0, n); convenience for position prediction.
  size_t PredictClamped(double x, size_t n) const {
    const double p = Predict(x);
    if (p <= 0.0) return 0;
    if (p >= static_cast<double>(n - 1)) return n - 1;
    return static_cast<size_t>(p);
  }

  // Least-squares fit over (keys[i] -> i) for i in [begin, end). Any
  // random-access container of arithmetic keys works.
  template <typename Vec>
  static LinearModel FitToPositions(const Vec& keys, size_t begin,
                                    size_t end) {
    LinearModel m;
    const size_t n = end - begin;
    if (n == 0) return m;
    if (n == 1) {
      m.slope = 0.0;
      m.intercept = static_cast<double>(begin);
      return m;
    }
    // Accumulate in double; keys can be uint64 so center them first to
    // limit catastrophic cancellation.
    const double x0 = static_cast<double>(keys[begin]);
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double x = static_cast<double>(keys[i]) - x0;
      const double y = static_cast<double>(i);
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_xy += x * y;
    }
    const double dn = static_cast<double>(n);
    const double denom = dn * sum_xx - sum_x * sum_x;
    if (denom <= 0.0) {
      // All keys equal (or numerically so): flat model at the mean position.
      m.slope = 0.0;
      m.intercept = sum_y / dn;
      return m;
    }
    m.slope = (dn * sum_xy - sum_x * sum_y) / denom;
    m.intercept = (sum_y - m.slope * sum_x) / dn - m.slope * x0;
    return m;
  }

  // Exact line through two (x, y) points.
  static LinearModel ThroughPoints(double x1, double y1, double x2,
                                   double y2) {
    LinearModel m;
    if (x2 == x1) {
      m.slope = 0.0;
      m.intercept = y1;
    } else {
      m.slope = (y2 - y1) / (x2 - x1);
      m.intercept = y1 - m.slope * x1;
    }
    return m;
  }
};

}  // namespace lidx

#endif  // LIDX_MODELS_LINEAR_MODEL_H_
