#ifndef LIDX_MODELS_LOGISTIC_H_
#define LIDX_MODELS_LOGISTIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lidx {

// Small logistic-regression classifier over scalar keys. The learned Bloom
// filter and the AI+R-tree router both need a cheap membership/selectivity
// oracle; this model maps a key to Fourier features of its normalized value
// so it can learn "the key space is occupied in these intervals" structure
// without a neural network (the tutorial's guidance in §6.2: prefer simple
// models so training and inference never dominate).
class LogisticModel {
 public:
  // num_harmonics controls capacity: features are
  // [1, x, sin(2*pi*k*x), cos(2*pi*k*x)] for k = 1..num_harmonics.
  explicit LogisticModel(int num_harmonics = 8);

  // Trains on positive (member) and negative (non-member) keys with mini
  // batch SGD. Keys are normalized internally to [0,1] using the observed
  // min/max over both sets.
  void Train(const std::vector<uint64_t>& positives,
             const std::vector<uint64_t>& negatives, int epochs = 20,
             double learning_rate = 0.5, uint64_t seed = 13);

  // Probability that `key` is a member, in [0,1].
  double Predict(uint64_t key) const;

  // Number of parameters (for size accounting).
  size_t NumParameters() const { return weights_.size(); }
  size_t SizeBytes() const { return weights_.size() * sizeof(double) + 16; }

 private:
  void Featurize(uint64_t key, std::vector<double>* out) const;

  int num_harmonics_;
  std::vector<double> weights_;
  double key_min_ = 0.0;
  double key_scale_ = 1.0;
};

}  // namespace lidx

#endif  // LIDX_MODELS_LOGISTIC_H_
