#ifndef LIDX_MULTI_D_ZM_INDEX_H_
#define LIDX_MULTI_D_ZM_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/search.h"
#include "models/plr.h"
#include "sfc/morton.h"
#include "sfc/zrange.h"
#include "spatial/geometry.h"

namespace lidx {

// ZM-index (Wang et al., MDM 2019): the canonical *projected-space* learned
// multi-dimensional index (tutorial §5.2, Approach 2). Points are mapped to
// Z-order (Morton) codes, sorted by code, and a learned one-dimensional
// model (ε-bounded PLA, as in the PGM data level) indexes the code array.
// Range queries scan the code order and leapfrog dead stretches with
// BIGMIN jumps (Tropf & Herzog), re-entering the learned index at each
// jump instead of walking a B-tree.
//
// Taxonomy position: multi-dimensional / immutable / pure / projected.
class ZmIndex {
 public:
  struct Options {
    int bits_per_dim = 20;   // Grid resolution for quantization.
    size_t epsilon = 64;     // PLA error bound on the code array.
    // Threads for Build: Morton encoding, the (code, id) sort, and the PLA
    // segmentation all parallelize. Entries and codes are identical for
    // every thread count (the sort key is a total order); only the PLA
    // segment boundaries may differ at block seams, with the same
    // ε-guarantee. 1 = fully serial.
    size_t build_threads = 1;
  };

  ZmIndex() = default;

  void Build(const std::vector<Point2D>& points) {
    Build(points, Options());
  }

  void Build(const std::vector<Point2D>& points, const Options& options) {
    options_ = options;
    const size_t threads = options.build_threads;
    const size_t n = points.size();
    entries_.assign(n, ZEntry{});
    ParallelForIndex(threads, n, [&](size_t i) {
      const uint32_t qx = sfc::Quantize(points[i].x, options_.bits_per_dim);
      const uint32_t qy = sfc::Quantize(points[i].y, options_.bits_per_dim);
      entries_[i] = {sfc::MortonEncode2D(qx, qy), points[i],
                     static_cast<uint32_t>(i)};
    });
    // (code, id) is a total order, so the parallel sort is byte-identical
    // to the serial one.
    ParallelSort(threads, &entries_,
                 [](const ZEntry& a, const ZEntry& b) {
                   if (a.code != b.code) return a.code < b.code;
                   return a.id < b.id;
                 });
    codes_.assign(n, 0);
    ParallelForIndex(threads, n, [&](size_t i) { codes_[i] = entries_[i].code; });

    // ε-bounded PLA over the (deduplicated) codes; duplicates are rare but
    // legal, so the model trains on first occurrences and lookups widen
    // through the fix-up search.
    segments_ = BuildPlaDedupBlocked(
        codes_, static_cast<double>(options_.epsilon), threads);
    segment_first_keys_.clear();
    segment_first_keys_.reserve(segments_.size());
    for (const PlaSegment& s : segments_) {
      segment_first_keys_.push_back(s.first_key);
    }
  }

  // Ids of points exactly equal to `p`.
  std::vector<uint32_t> FindExact(const Point2D& p) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    const uint32_t qx = sfc::Quantize(p.x, options_.bits_per_dim);
    const uint32_t qy = sfc::Quantize(p.y, options_.bits_per_dim);
    const uint64_t code = sfc::MortonEncode2D(qx, qy);
    for (size_t i = LowerBoundCode(code);
         i < entries_.size() && entries_[i].code == code; ++i) {
      if (entries_[i].point == p) out.push_back(entries_[i].id);
    }
    return out;
  }

  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    sfc::ZRect rect;
    rect.min_x = sfc::Quantize(q.min_x, options_.bits_per_dim);
    rect.min_y = sfc::Quantize(q.min_y, options_.bits_per_dim);
    rect.max_x = sfc::Quantize(q.max_x, options_.bits_per_dim);
    rect.max_y = sfc::Quantize(q.max_y, options_.bits_per_dim);
    const uint64_t zmin = sfc::MortonEncode2D(rect.min_x, rect.min_y);
    const uint64_t zmax = sfc::MortonEncode2D(rect.max_x, rect.max_y);

    size_t i = LowerBoundCode(zmin);
    while (i < entries_.size() && entries_[i].code <= zmax) {
      const uint64_t code = entries_[i].code;
      if (sfc::ZCodeInRect(code, rect)) {
        // Consume the whole duplicate-code run.
        for (; i < entries_.size() && entries_[i].code == code; ++i) {
          if (q.Contains(entries_[i].point)) out.push_back(entries_[i].id);
        }
        continue;
      }
      // Outside the rectangle: leapfrog with BIGMIN and re-enter via the
      // learned index.
      const uint64_t next = sfc::BigMin(code, rect);
      if (next == UINT64_MAX || next > zmax) break;
      LIDX_DCHECK(next > code);
      i = LowerBoundCode(next);
    }
    return out;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t NumSegments() const { return segments_.size(); }

  size_t ModelSizeBytes() const {
    return sizeof(*this) + segments_.capacity() * sizeof(PlaSegment) +
           segment_first_keys_.capacity() * sizeof(double);
  }

  size_t SizeBytes() const {
    return ModelSizeBytes() + entries_.capacity() * sizeof(ZEntry) +
           codes_.capacity() * sizeof(uint64_t);
  }

 private:
  struct ZEntry {
    uint64_t code;
    Point2D point;
    uint32_t id;
  };

  // First index with codes_[i] >= code, via the learned model.
  size_t LowerBoundCode(uint64_t code) const {
    const double k = static_cast<double>(code);
    const auto it = std::upper_bound(segment_first_keys_.begin(),
                                     segment_first_keys_.end(), k);
    const size_t seg =
        (it == segment_first_keys_.begin())
            ? 0
            : static_cast<size_t>(it - segment_first_keys_.begin()) - 1;
    const size_t pred =
        segments_[seg].model.PredictClamped(k, codes_.size());
    return WindowLowerBoundWithFixup(codes_, code, pred,
                                     options_.epsilon + 1,
                                     options_.epsilon + 1, codes_.size());
  }

  Options options_;
  std::vector<ZEntry> entries_;  // Sorted by (code, id).
  std::vector<uint64_t> codes_;  // Parallel code array for search.
  std::vector<PlaSegment> segments_;
  std::vector<double> segment_first_keys_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_ZM_INDEX_H_
