#ifndef LIDX_MULTI_D_LISA_H_
#define LIDX_MULTI_D_LISA_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/search.h"
#include "spatial/geometry.h"

namespace lidx {

// LISA-style learned spatial index (Li et al., SIGMOD 2020): the tutorial's
// representative *mutable* pure learned multi-dimensional index with
// in-place inserts (§5.5). The construction:
//
//  1. A *mapping function* M(p) projects points to scalars: a grid whose
//     cell boundaries are learned from the per-dimension CDFs (equi-depth),
//     cells numbered row-major, plus the point's x-fraction within its
//     cell, making M injective-enough and monotone within a cell row.
//  2. The mapped values are partitioned into equal-count *shards* (LISA's
//     learned shard-prediction function, realized here as the equi-depth
//     quantiles of M over the build data).
//  3. Each shard stores its points sorted by mapped value; inserts place
//     new points in-place into the owning shard, splitting oversized
//     shards locally (the shard boundary list absorbs the new boundary).
//
// Taxonomy position: multi-dimensional / mutable / dynamic layout / pure /
// in-place.
class LisaIndex {
 public:
  struct Options {
    size_t grid_cells_per_dim = 32;  // Learned (equi-depth) grid resolution.
    size_t target_shard_size = 256;
    size_t max_shard_size = 1024;    // Split threshold.
  };

  LisaIndex() = default;

  void Build(const std::vector<Point2D>& points) {
    Build(points, Options());
  }

  void Build(const std::vector<Point2D>& points, const Options& options) {
    options_ = options;
    shards_.clear();
    shard_lower_bounds_.clear();
    size_ = 0;
    BuildGrid(points);
    if (points.empty()) {
      // Single catch-all shard.
      shard_lower_bounds_.push_back(0.0);
      shards_.emplace_back();
      return;
    }

    std::vector<Entry> entries;
    entries.reserve(points.size());
    for (uint32_t i = 0; i < points.size(); ++i) {
      entries.push_back({MapValue(points[i]), points[i], i});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.mapped != b.mapped) return a.mapped < b.mapped;
                return a.id < b.id;
              });

    // Equal-count sharding of the mapped axis. Boundaries are nudged
    // forward so entries with equal mapped values never straddle a shard
    // (ShardOf must be able to locate every duplicate).
    const size_t num_shards = std::max<size_t>(
        1, entries.size() / options_.target_shard_size);
    const size_t per_shard = (entries.size() + num_shards - 1) / num_shards;
    size_t begin = 0;
    while (begin < entries.size()) {
      size_t end = std::min(entries.size(), begin + per_shard);
      while (end < entries.size() &&
             entries[end].mapped == entries[end - 1].mapped) {
        ++end;
      }
      shard_lower_bounds_.push_back(begin == 0 ? 0.0 : entries[begin].mapped);
      Shard shard;
      shard.entries.assign(entries.begin() + begin, entries.begin() + end);
      shards_.push_back(std::move(shard));
      begin = end;
    }
    size_ = entries.size();
  }

  void Insert(const Point2D& p, uint32_t id) {
    LIDX_CHECK(!shards_.empty());  // Build() must run first (can be empty).
    const double m = MapValue(p);
    const size_t s = ShardOf(m);
    Shard& shard = shards_[s];
    const Entry e{m, p, id};
    const auto it = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), e,
        [](const Entry& a, const Entry& b) {
          if (a.mapped != b.mapped) return a.mapped < b.mapped;
          return a.id < b.id;
        });
    shard.entries.insert(it, e);
    ++size_;
    if (shard.entries.size() > options_.max_shard_size) SplitShard(s);
  }

  bool Erase(const Point2D& p, uint32_t id) {
    if (shards_.empty()) return false;
    const double m = MapValue(p);
    Shard& shard = shards_[ShardOf(m)];
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (shard.entries[i].mapped == m && shard.entries[i].id == id &&
          shard.entries[i].point == p) {
        shard.entries.erase(shard.entries.begin() + i);
        --size_;
        return true;
      }
    }
    return false;
  }

  std::vector<uint32_t> FindExact(const Point2D& p) const {
    std::vector<uint32_t> out;
    if (shards_.empty()) return out;
    const double m = MapValue(p);
    const Shard& shard = shards_[ShardOf(m)];
    auto it = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), m,
        [](const Entry& e, double v) { return e.mapped < v; });
    for (; it != shard.entries.end() && it->mapped == m; ++it) {
      if (it->point == p) out.push_back(it->id);
    }
    return out;
  }

  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q) const {
    std::vector<uint32_t> out;
    CollectRange(q, [&](const Entry& e) { out.push_back(e.id); });
    return out;
  }

  // kNN via expanding square range queries (LISA's augmentation strategy).
  std::vector<uint32_t> Knn(const Point2D& q, size_t k) const {
    std::vector<uint32_t> out;
    if (size_ == 0 || k == 0) return out;
    double r = 0.02;
    while (true) {
      RangeQuery2D box{std::max(0.0, q.x - r), std::max(0.0, q.y - r),
                       std::min(1.0, q.x + r), std::min(1.0, q.y + r)};
      std::vector<std::pair<double, uint32_t>> scored;
      CollectRange(box, [&](const Entry& e) {
        scored.emplace_back(Dist2(e.point, q), e.id);
      });
      const bool whole_space = r > 2.0;
      if (scored.size() >= k) {
        // Only certified if the kth distance fits inside the square.
        std::nth_element(scored.begin(), scored.begin() + (k - 1),
                         scored.end());
        if (whole_space || std::sqrt(scored[k - 1].first) <= r) {
          std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
          out.reserve(k);
          for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
          return out;
        }
      } else if (whole_space) {
        std::sort(scored.begin(), scored.end());
        for (const auto& [d2, id] : scored) out.push_back(id);
        return out;
      }
      r *= 2.0;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t NumShards() const { return shards_.size(); }

  size_t SizeBytes() const {
    size_t total = sizeof(*this) +
                   shard_lower_bounds_.capacity() * sizeof(double) +
                   x_bounds_.capacity() * sizeof(double) +
                   y_bounds_.capacity() * sizeof(double);
    for (const Shard& s : shards_) {
      total += sizeof(Shard) + s.entries.capacity() * sizeof(Entry);
    }
    return total;
  }

  // Test hook: every entry's mapped value must fall inside its shard's
  // bounds and shards must be internally sorted.
  void CheckInvariants() const {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = shards_[s];
      for (size_t i = 0; i < shard.entries.size(); ++i) {
        if (i > 0) {
          LIDX_CHECK(shard.entries[i - 1].mapped <= shard.entries[i].mapped);
        }
        LIDX_CHECK(ShardOf(shard.entries[i].mapped) == s);
      }
    }
  }

 private:
  struct Entry {
    double mapped;
    Point2D point;
    uint32_t id;
  };

  struct Shard {
    std::vector<Entry> entries;  // Sorted by (mapped, id).
  };

  // Core range machinery: invokes `emit` for every entry inside `q`. Each
  // grid row intersecting the query contributes one contiguous mapped
  // interval [cell_id(row, c_lo), cell_id(row, c_hi) + 1).
  template <typename Emit>
  void CollectRange(const RangeQuery2D& q, Emit emit) const {
    if (shards_.empty() || size_ == 0) return;
    const size_t cx_lo = CellCoord(x_bounds_, q.min_x);
    const size_t cx_hi = CellCoord(x_bounds_, q.max_x);
    const size_t cy_lo = CellCoord(y_bounds_, q.min_y);
    const size_t cy_hi = CellCoord(y_bounds_, q.max_y);
    const size_t g = options_.grid_cells_per_dim;
    for (size_t cy = cy_lo; cy <= cy_hi; ++cy) {
      const double m_lo = static_cast<double>(cy * g + cx_lo);
      const double m_hi = static_cast<double>(cy * g + cx_hi) + 1.0;
      const size_t first_shard = ShardOf(m_lo);
      for (size_t s = first_shard; s < shards_.size(); ++s) {
        if (s > first_shard && shard_lower_bounds_[s] >= m_hi) break;
        const Shard& shard = shards_[s];
        auto it = std::lower_bound(
            shard.entries.begin(), shard.entries.end(), m_lo,
            [](const Entry& e, double v) { return e.mapped < v; });
        for (; it != shard.entries.end() && it->mapped < m_hi; ++it) {
          if (q.Contains(it->point)) emit(*it);
        }
      }
    }
  }

  void BuildGrid(const std::vector<Point2D>& points) {
    const size_t g = options_.grid_cells_per_dim;
    x_bounds_.assign(g, 0.0);
    y_bounds_.assign(g, 0.0);
    if (points.empty()) {
      for (size_t i = 0; i < g; ++i) {
        x_bounds_[i] = static_cast<double>(i) / static_cast<double>(g);
        y_bounds_[i] = static_cast<double>(i) / static_cast<double>(g);
      }
      return;
    }
    std::vector<double> xs, ys;
    xs.reserve(points.size());
    ys.reserve(points.size());
    for (const Point2D& p : points) {
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    for (size_t c = 0; c < g; ++c) {
      const size_t rank = c * xs.size() / g;
      x_bounds_[c] = xs[rank];
      y_bounds_[c] = ys[rank];
    }
    x_bounds_[0] = 0.0;
    y_bounds_[0] = 0.0;
  }

  static size_t CellCoord(const std::vector<double>& bounds, double v) {
    const size_t lb = BinarySearchLowerBound(bounds, v, 0, bounds.size());
    if (lb < bounds.size() && bounds[lb] == v) return lb;
    return lb == 0 ? 0 : lb - 1;
  }

  // Mapped value: row-major cell id + x-fraction within the cell.
  double MapValue(const Point2D& p) const {
    const size_t g = options_.grid_cells_per_dim;
    const size_t cx = CellCoord(x_bounds_, p.x);
    const size_t cy = CellCoord(y_bounds_, p.y);
    const double cell_lo = x_bounds_[cx];
    const double cell_hi = (cx + 1 < g) ? x_bounds_[cx + 1] : 1.0;
    const double width = std::max(1e-12, cell_hi - cell_lo);
    const double frac = std::clamp((p.x - cell_lo) / width, 0.0, 1.0);
    const double cell = static_cast<double>(cy * g + cx);
    double mapped = cell + frac;
    // Clamp AFTER the addition: cell + frac can round up to the next cell
    // when frac is within one ulp(cell) of 1.
    if (mapped >= cell + 1.0) mapped = std::nextafter(cell + 1.0, cell);
    return mapped;
  }

  // Shard of a mapped value: last lower bound <= m.
  size_t ShardOf(double m) const {
    const size_t lb = BinarySearchLowerBound(shard_lower_bounds_, m, 0,
                                             shard_lower_bounds_.size());
    if (lb < shard_lower_bounds_.size() && shard_lower_bounds_[lb] == m) {
      return lb;
    }
    return lb == 0 ? 0 : lb - 1;
  }

  void SplitShard(size_t s) {
    Shard& shard = shards_[s];
    const size_t mid = shard.entries.size() / 2;
    // The split boundary must separate distinct mapped values; scan for the
    // first position after mid with a strictly larger mapped value.
    size_t cut = mid;
    while (cut < shard.entries.size() &&
           shard.entries[cut].mapped == shard.entries[mid - 1].mapped) {
      ++cut;
    }
    if (cut >= shard.entries.size()) return;  // All-equal shard: cannot split.
    Shard right;
    right.entries.assign(shard.entries.begin() + cut, shard.entries.end());
    const double boundary = right.entries.front().mapped;
    shard.entries.resize(cut);
    shards_.insert(shards_.begin() + s + 1, std::move(right));
    shard_lower_bounds_.insert(shard_lower_bounds_.begin() + s + 1, boundary);
  }

  Options options_;
  std::vector<double> x_bounds_;  // Learned equi-depth cell boundaries.
  std::vector<double> y_bounds_;
  std::vector<double> shard_lower_bounds_;
  std::vector<Shard> shards_;
  size_t size_ = 0;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_LISA_H_
