#ifndef LIDX_MULTI_D_HM_INDEX_H_
#define LIDX_MULTI_D_HM_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/search.h"
#include "models/plr.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "sfc/zrange.h"
#include "spatial/geometry.h"

namespace lidx {

// Hilbert-order learned index: the ZM-index recipe with the Hilbert curve
// as the projection (several taxonomy entries swap the curve this way —
// the tutorial's §5.1 presents the choice as a locality/compute
// trade-off). Hilbert has no cheap BIGMIN, so range queries decompose the
// rectangle into curve intervals up-front (aligned quadrants are
// contiguous stretches of the Hilbert curve) and re-enter the learned
// index once per interval; Hilbert's locality yields ~2x fewer intervals
// than Z-order for the same rectangle (E12), which A5 turns into an
// end-to-end comparison against the BIGMIN-driven ZM-index.
//
// Taxonomy position: multi-dimensional / immutable / pure / projected
// (Hilbert).
class HmIndex {
 public:
  struct Options {
    int bits_per_dim = 16;       // Hilbert order (codes < 2^(2*bits)).
    size_t epsilon = 64;
    size_t max_query_ranges = 256;  // Decomposition budget per query.
  };

  HmIndex() = default;

  void Build(const std::vector<Point2D>& points) {
    Build(points, Options());
  }

  void Build(const std::vector<Point2D>& points, const Options& options) {
    LIDX_CHECK(options.bits_per_dim >= 1 && options.bits_per_dim <= 26);
    options_ = options;
    entries_.clear();
    codes_.clear();
    segments_.clear();
    segment_first_keys_.clear();
    entries_.reserve(points.size());
    for (uint32_t i = 0; i < points.size(); ++i) {
      entries_.push_back({EncodePoint(points[i]), points[i], i});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const HEntry& a, const HEntry& b) {
                if (a.code != b.code) return a.code < b.code;
                return a.id < b.id;
              });
    codes_.reserve(entries_.size());
    for (const HEntry& e : entries_) codes_.push_back(e.code);

    SwingFilterBuilder builder(static_cast<double>(options_.epsilon));
    uint64_t prev = 0;
    bool has_prev = false;
    for (size_t i = 0; i < codes_.size(); ++i) {
      if (has_prev && codes_[i] == prev) continue;
      builder.Add(static_cast<double>(codes_[i]), i);
      prev = codes_[i];
      has_prev = true;
    }
    segments_ = builder.Finish();
    segment_first_keys_.reserve(segments_.size());
    for (const PlaSegment& s : segments_) {
      segment_first_keys_.push_back(s.first_key);
    }
  }

  std::vector<uint32_t> FindExact(const Point2D& p) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    const uint64_t code = EncodePoint(p);
    for (size_t i = LowerBoundCode(code);
         i < entries_.size() && entries_[i].code == code; ++i) {
      if (entries_[i].point == p) out.push_back(entries_[i].id);
    }
    return out;
  }

  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    sfc::ZRect rect;
    rect.min_x = sfc::Quantize(q.min_x, options_.bits_per_dim);
    rect.min_y = sfc::Quantize(q.min_y, options_.bits_per_dim);
    rect.max_x = sfc::Quantize(q.max_x, options_.bits_per_dim);
    rect.max_y = sfc::Quantize(q.max_y, options_.bits_per_dim);
    const auto intervals = sfc::DecomposeHilbertRanges(
        rect, options_.bits_per_dim, options_.max_query_ranges);
    for (const sfc::ZInterval& iv : intervals) {
      for (size_t i = LowerBoundCode(iv.lo);
           i < entries_.size() && entries_[i].code <= iv.hi; ++i) {
        // Post-filter: budget coarsening and cell quantization both admit
        // candidates outside the true rectangle.
        if (q.Contains(entries_[i].point)) out.push_back(entries_[i].id);
      }
    }
    return out;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t NumSegments() const { return segments_.size(); }

  size_t SizeBytes() const {
    return sizeof(*this) + entries_.capacity() * sizeof(HEntry) +
           codes_.capacity() * sizeof(uint64_t) +
           segments_.capacity() * sizeof(PlaSegment) +
           segment_first_keys_.capacity() * sizeof(double);
  }

 private:
  struct HEntry {
    uint64_t code;
    Point2D point;
    uint32_t id;
  };

  uint64_t EncodePoint(const Point2D& p) const {
    return sfc::HilbertEncode2D(
        sfc::Quantize(p.x, options_.bits_per_dim),
        sfc::Quantize(p.y, options_.bits_per_dim), options_.bits_per_dim);
  }

  size_t LowerBoundCode(uint64_t code) const {
    const double k = static_cast<double>(code);
    const auto it = std::upper_bound(segment_first_keys_.begin(),
                                     segment_first_keys_.end(), k);
    const size_t seg =
        (it == segment_first_keys_.begin())
            ? 0
            : static_cast<size_t>(it - segment_first_keys_.begin()) - 1;
    const size_t pred = segments_[seg].model.PredictClamped(k, codes_.size());
    return WindowLowerBoundWithFixup(codes_, code, pred,
                                     options_.epsilon + 1,
                                     options_.epsilon + 1, codes_.size());
  }

  Options options_;
  std::vector<HEntry> entries_;  // Sorted by (code, id).
  std::vector<uint64_t> codes_;
  std::vector<PlaSegment> segments_;
  std::vector<double> segment_first_keys_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_HM_INDEX_H_
