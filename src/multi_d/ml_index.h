#ifndef LIDX_MULTI_D_ML_INDEX_H_
#define LIDX_MULTI_D_ML_INDEX_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/search.h"
#include "models/plr.h"
#include "spatial/geometry.h"

namespace lidx {

// ML-index (Davitkova et al., EDBT 2020): an iDistance-style projected
// learned index supporting point, range, AND kNN queries — the tutorial
// singles it out because most learned multi-dimensional indexes only cover
// point/range (§5.6). K reference points (k-means on a sample) partition
// the data; each point projects to the scalar key
//     key = partition_id * kPartitionStride + dist(point, ref[partition])
// and a learned ε-bounded model indexes the sorted key array. kNN runs the
// classic iDistance expanding-annulus search on top of the learned index.
//
// Taxonomy position: multi-dimensional / immutable / pure / projected.
class MlIndex {
 public:
  struct Options {
    // More partitions mean thinner kNN annuli (less ring over-scan) at the
    // cost of more reference-point distance evaluations per query.
    size_t num_partitions = 64;
    size_t epsilon = 32;
    int kmeans_iterations = 8;
    uint64_t seed = 31;
  };

  MlIndex() = default;

  void Build(const std::vector<Point2D>& points) {
    Build(points, Options());
  }

  void Build(const std::vector<Point2D>& points, const Options& options) {
    options_ = options;
    entries_.clear();
    keys_.clear();
    refs_.clear();
    if (points.empty()) return;

    TrainReferencePoints(points);

    entries_.reserve(points.size());
    for (uint32_t i = 0; i < points.size(); ++i) {
      const size_t part = NearestRef(points[i]);
      const double dist =
          std::sqrt(Dist2(points[i], refs_[part]));
      entries_.push_back(
          {MakeKey(part, dist), dist, points[i], i});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const MlEntry& a, const MlEntry& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.id < b.id;
              });
    keys_.reserve(entries_.size());
    for (const MlEntry& e : entries_) keys_.push_back(e.key);

    // Learned model over the composite keys (dedup-fed swing filter).
    SwingFilterBuilder builder(static_cast<double>(options_.epsilon));
    double prev = 0.0;
    bool has_prev = false;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (has_prev && keys_[i] == prev) continue;
      builder.Add(keys_[i], i);
      prev = keys_[i];
      has_prev = true;
    }
    segments_ = builder.Finish();
    segment_first_keys_.reserve(segments_.size());
    for (const PlaSegment& s : segments_) {
      segment_first_keys_.push_back(s.first_key);
    }
  }

  std::vector<uint32_t> FindExact(const Point2D& p) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    const size_t part = NearestRef(p);
    const double dist = std::sqrt(Dist2(p, refs_[part]));
    const double key = MakeKey(part, dist);
    for (size_t i = LowerBoundKey(key);
         i < entries_.size() && entries_[i].key == key; ++i) {
      if (entries_[i].point == p) out.push_back(entries_[i].id);
    }
    return out;
  }

  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    const Rect rect = Rect::FromQuery(q);
    for (size_t part = 0; part < refs_.size(); ++part) {
      // Candidate annulus: [min dist(ref, rect), max dist(ref, corner)].
      const double dmin = std::sqrt(rect.MinDist2(refs_[part]));
      const double dmax = MaxDistToRect(refs_[part], rect);
      const size_t begin = LowerBoundKey(MakeKey(part, dmin));
      const double hi_key = MakeKey(part, dmax);
      for (size_t i = begin; i < entries_.size() && entries_[i].key <= hi_key;
           ++i) {
        if (q.Contains(entries_[i].point)) out.push_back(entries_[i].id);
      }
    }
    return out;
  }

  // k nearest neighbors via iDistance expanding annuli: grow radius r until
  // the kth best distance is <= r (then nothing outside can improve).
  std::vector<uint32_t> Knn(const Point2D& q, size_t k) const {
    std::vector<uint32_t> out;
    if (entries_.empty() || k == 0) return out;
    std::vector<double> qdist(refs_.size());
    for (size_t part = 0; part < refs_.size(); ++part) {
      qdist[part] = std::sqrt(Dist2(q, refs_[part]));
    }
    // Best-k max-heap of (dist2, id).
    std::vector<std::pair<double, uint32_t>> best;
    auto consider = [&](const MlEntry& e) {
      const double d2 = Dist2(e.point, q);
      best.emplace_back(d2, e.id);
    };

    double r = InitialKnnRadius(k);
    while (true) {
      best.clear();
      for (size_t part = 0; part < refs_.size(); ++part) {
        // Ball(q, r) intersects partition's annulus [qdist - r, qdist + r].
        const double dmin = std::max(0.0, qdist[part] - r);
        const double dmax = qdist[part] + r;
        const size_t begin = LowerBoundKey(MakeKey(part, dmin));
        const double hi_key = MakeKey(part, dmax);
        for (size_t i = begin;
             i < entries_.size() && entries_[i].key <= hi_key; ++i) {
          consider(entries_[i]);
        }
      }
      if (best.size() >= k) {
        std::nth_element(
            best.begin(), best.begin() + (k - 1), best.end());
        const double kth = best[k - 1].first;
        if (std::sqrt(kth) <= r) break;  // Certified: nothing outside wins.
      }
      if (r > 2.0) break;  // Unit square: the whole space is covered.
      r *= 2.0;
    }
    const size_t take = std::min(k, best.size());
    std::partial_sort(best.begin(), best.begin() + take, best.end());
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) out.push_back(best[i].second);
    return out;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t NumPartitions() const { return refs_.size(); }

  size_t ModelSizeBytes() const {
    return sizeof(*this) + refs_.capacity() * sizeof(Point2D) +
           segments_.capacity() * sizeof(PlaSegment) +
           segment_first_keys_.capacity() * sizeof(double);
  }

  size_t SizeBytes() const {
    return ModelSizeBytes() + entries_.capacity() * sizeof(MlEntry) +
           keys_.capacity() * sizeof(double);
  }

 private:
  // Stride separating partitions on the projected axis; distances in the
  // unit square never exceed sqrt(2) < 2.
  static constexpr double kPartitionStride = 4.0;

  struct MlEntry {
    double key;
    double dist;
    Point2D point;
    uint32_t id;
  };

  static double MakeKey(size_t partition, double dist) {
    return static_cast<double>(partition) * kPartitionStride + dist;
  }

  // First search radius: sized so a uniform distribution would contain ~k
  // points in the ball, avoiding wasted empty rounds.
  double InitialKnnRadius(size_t k) const {
    const double density = static_cast<double>(entries_.size());
    const double area = static_cast<double>(k) / std::max(1.0, density);
    return std::max(0.005, std::sqrt(area / 3.14159265358979));
  }

  static double MaxDistToRect(const Point2D& p, const Rect& r) {
    const double dx = std::max(std::abs(p.x - r.min_x),
                               std::abs(p.x - r.max_x));
    const double dy = std::max(std::abs(p.y - r.min_y),
                               std::abs(p.y - r.max_y));
    return std::sqrt(dx * dx + dy * dy);
  }

  void TrainReferencePoints(const std::vector<Point2D>& points) {
    const size_t k = std::min(options_.num_partitions, points.size());
    Rng rng(options_.seed);
    refs_.clear();
    refs_.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      refs_.push_back(points[rng.NextBounded(points.size())]);
    }
    // Lloyd iterations on a bounded sample.
    const size_t sample = std::min<size_t>(points.size(), 20000);
    std::vector<Point2D> sum(k);
    std::vector<size_t> count(k);
    for (int iter = 0; iter < options_.kmeans_iterations; ++iter) {
      std::fill(sum.begin(), sum.end(), Point2D{});
      std::fill(count.begin(), count.end(), 0);
      for (size_t s = 0; s < sample; ++s) {
        const Point2D& p =
            points[sample == points.size() ? s : rng.NextBounded(
                                                     points.size())];
        const size_t c = NearestRef(p);
        sum[c].x += p.x;
        sum[c].y += p.y;
        ++count[c];
      }
      for (size_t c = 0; c < k; ++c) {
        if (count[c] > 0) {
          refs_[c] = {sum[c].x / static_cast<double>(count[c]),
                      sum[c].y / static_cast<double>(count[c])};
        }
      }
    }
  }

  size_t NearestRef(const Point2D& p) const {
    size_t best = 0;
    double best_d2 = Dist2(p, refs_[0]);
    for (size_t i = 1; i < refs_.size(); ++i) {
      const double d2 = Dist2(p, refs_[i]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    return best;
  }

  size_t LowerBoundKey(double key) const {
    if (segments_.empty()) return 0;
    const auto it = std::upper_bound(segment_first_keys_.begin(),
                                     segment_first_keys_.end(), key);
    const size_t seg =
        (it == segment_first_keys_.begin())
            ? 0
            : static_cast<size_t>(it - segment_first_keys_.begin()) - 1;
    const size_t pred = segments_[seg].model.PredictClamped(key, keys_.size());
    return WindowLowerBoundWithFixup(keys_, key, pred, options_.epsilon + 1,
                                     options_.epsilon + 1, keys_.size());
  }

  Options options_;
  std::vector<Point2D> refs_;
  std::vector<MlEntry> entries_;  // Sorted by (key, id).
  std::vector<double> keys_;
  std::vector<PlaSegment> segments_;
  std::vector<double> segment_first_keys_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_ML_INDEX_H_
