#ifndef LIDX_MULTI_D_AIRTREE_H_
#define LIDX_MULTI_D_AIRTREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "spatial/geometry.h"
#include "spatial/rtree.h"

namespace lidx {

// "AI+R"-tree-style hybrid (Al-Mamun et al., MDM 2022; tutorial §5.4):
// a classic R-tree remains the source of truth, but point queries are
// routed by a learned component that predicts the candidate leaves
// directly, skipping the internal-node descent. Following the paper's
// instance-optimization recipe, the router is trained *from the tree
// itself* after bulk loading: a grid over the space memorizes, per cell,
// which leaves' MBRs intersect it (a piecewise-constant learned function
// from query point to leaf set — the same role the paper's classifier
// plays). Queries the router cannot certify fall back to the traditional
// R-tree path, so answers are always exact.
//
// Taxonomy position: multi-dimensional / mutable / fixed layout /
// hybrid (R-tree).
class AiRTree {
 public:
  struct Options {
    uint32_t router_cells_per_dim = 128;
  };

  AiRTree() = default;

  void BulkLoad(const std::vector<Point2D>& points) {
    BulkLoad(points, Options());
  }

  void BulkLoad(const std::vector<Point2D>& points, const Options& options) {
    options_ = options;
    rtree_.BulkLoad(points);
    TrainRouter();
  }

  // Inserts go to the R-tree; the router is retrained lazily once enough
  // inserts accumulate (the learned component ages, as in the paper).
  void Insert(const Point2D& p, uint32_t id) {
    rtree_.Insert(p, id);
    ++inserts_since_train_;
    if (inserts_since_train_ * 10 > rtree_.size()) {
      TrainRouter();
    }
  }

  // Point query through the learned router. The router is only consulted
  // while it is *current* (no inserts since training); otherwise the
  // traditional path answers, preserving exactness unconditionally.
  std::vector<uint32_t> FindExact(const Point2D& p) {
    ++queries_;
    if (!router_ready_ || inserts_since_train_ > 0) {
      ++fallbacks_;
      return rtree_.FindExact(p);
    }
    const size_t cell = CellOf(p);
    std::vector<uint32_t> out;
    for (const uint32_t leaf : router_[cell]) {
      if (!leaf_mbrs_[leaf].ContainsPoint(p)) continue;
      leaves_probed_ += 1;
      for (const RTree::LeafPayload& e : leaf_contents_[leaf]) {
        if (e.point == p) out.push_back(e.id);
      }
    }
    return out;
  }

  // Rebuilds the router immediately (e.g., after a batch of inserts and
  // before a read-heavy phase).
  void RetrainRouter() { TrainRouter(); }

  // Range and kNN use the traditional component (the paper's hybrid scheme
  // routes only high-selectivity queries through the model).
  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q,
                                   RTreeQueryStats* stats = nullptr) const {
    return rtree_.RangeQuery(q, stats);
  }

  std::vector<uint32_t> Knn(const Point2D& q, size_t k) const {
    return rtree_.Knn(q, k);
  }

  size_t size() const { return rtree_.size(); }
  const RTree& rtree() const { return rtree_; }

  // Router effectiveness counters (E7 reporting).
  uint64_t queries() const { return queries_; }
  uint64_t fallbacks() const { return fallbacks_; }
  uint64_t leaves_probed() const { return leaves_probed_; }
  void ResetCounters() {
    queries_ = 0;
    fallbacks_ = 0;
    leaves_probed_ = 0;
  }

  size_t SizeBytes() const {
    size_t total = sizeof(*this) + rtree_.SizeBytes() +
                   leaf_mbrs_.capacity() * sizeof(Rect);
    for (const auto& cell : router_) {
      total += cell.capacity() * sizeof(uint32_t);
    }
    for (const auto& leaf : leaf_contents_) {
      total += leaf.capacity() * sizeof(RTree::LeafPayload);
    }
    return total;
  }

 private:
  void TrainRouter() {
    rtree_.CollectLeaves(&leaf_mbrs_, &leaf_contents_);
    const uint32_t g = options_.router_cells_per_dim;
    router_.assign(static_cast<size_t>(g) * g, {});
    for (uint32_t leaf = 0; leaf < leaf_mbrs_.size(); ++leaf) {
      const Rect& mbr = leaf_mbrs_[leaf];
      const uint32_t x0 = ClampCell(mbr.min_x);
      const uint32_t x1 = ClampCell(mbr.max_x);
      const uint32_t y0 = ClampCell(mbr.min_y);
      const uint32_t y1 = ClampCell(mbr.max_y);
      for (uint32_t y = y0; y <= y1; ++y) {
        for (uint32_t x = x0; x <= x1; ++x) {
          router_[static_cast<size_t>(y) * g + x].push_back(leaf);
        }
      }
    }
    inserts_since_train_ = 0;
    router_ready_ = !leaf_mbrs_.empty();
  }

  uint32_t ClampCell(double v) const {
    const uint32_t g = options_.router_cells_per_dim;
    if (v <= 0.0) return 0;
    const auto c = static_cast<uint32_t>(v * g);
    return c >= g ? g - 1 : c;
  }

  size_t CellOf(const Point2D& p) const {
    return static_cast<size_t>(ClampCell(p.y)) * options_.router_cells_per_dim +
           ClampCell(p.x);
  }

  Options options_;
  RTree rtree_;
  std::vector<Rect> leaf_mbrs_;
  std::vector<std::vector<RTree::LeafPayload>> leaf_contents_;
  std::vector<std::vector<uint32_t>> router_;
  bool router_ready_ = false;
  size_t inserts_since_train_ = 0;
  uint64_t queries_ = 0;
  uint64_t fallbacks_ = 0;
  uint64_t leaves_probed_ = 0;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_AIRTREE_H_
