#ifndef LIDX_MULTI_D_FLOOD_H_
#define LIDX_MULTI_D_FLOOD_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/search.h"
#include "models/linear_model.h"
#include "models/plr.h"
#include "spatial/geometry.h"

namespace lidx {

// Flood-style learned multi-dimensional grid (Nathan et al., SIGMOD 2020):
// the canonical *native-space* learned index (tutorial §5.2, Approach 4).
// One dimension (y here) is the sort dimension; the other is partitioned
// into columns whose boundaries are learned from the data's x-CDF
// (equi-depth, so skew cannot starve or flood a column). Inside a column,
// points are sorted by y with an ε-bounded learned model predicting
// positions. Interior columns of a range query need no x-filtering — only
// the two edge columns do — which is where the layout beats a uniform grid.
// The column count is tuned with a cost model over a sample workload
// (Flood's self-tuning step).
//
// Taxonomy position: multi-dimensional / immutable / pure / native space.
class FloodIndex {
 public:
  struct Options {
    size_t num_columns = 0;  // 0 = tune from the workload sample.
    size_t epsilon = 32;     // Per-column model error bound.
    // Candidates considered when tuning.
    std::vector<size_t> tuning_candidates = {16, 32, 64, 128, 256, 512};
    // Threads for Build: the x-CDF sort and the per-column work (y-sort +
    // ε-model) parallelize; the scatter into columns stays serial to
    // preserve point order. The built index is byte-identical for every
    // thread count. 1 = fully serial.
    size_t build_threads = 1;
  };

  FloodIndex() = default;

  // `sample_queries` drives column-count tuning; pass empty to use the
  // default column count (64).
  void Build(const std::vector<Point2D>& points,
             const std::vector<RangeQuery2D>& sample_queries = {}) {
    Build(points, sample_queries, Options());
  }

  void Build(const std::vector<Point2D>& points,
             const std::vector<RangeQuery2D>& sample_queries,
             const Options& options) {
    options_ = options;
    points_.clear();
    if (points.empty()) {
      columns_.clear();
      return;
    }
    size_t columns = options.num_columns;
    if (columns == 0) {
      columns = sample_queries.empty()
                    ? 64
                    : TuneColumns(points, sample_queries,
                                  options.tuning_candidates);
    }
    BuildWithColumns(points, columns);
  }

  std::vector<uint32_t> FindExact(const Point2D& p) const {
    std::vector<uint32_t> out;
    if (columns_.empty()) return out;
    const Column& col = columns_[ColumnOf(p.x)];
    const size_t lb = col.LowerBoundY(p.y, options_.epsilon);
    for (size_t i = lb; i < col.entries.size() && col.entries[i].point.y == p.y;
         ++i) {
      if (col.entries[i].point == p) out.push_back(col.entries[i].id);
    }
    return out;
  }

  std::vector<uint32_t> RangeQuery(const RangeQuery2D& q) const {
    std::vector<uint32_t> out;
    if (columns_.empty()) return out;
    const size_t c_lo = ColumnOf(q.min_x);
    const size_t c_hi = ColumnOf(q.max_x);
    for (size_t c = c_lo; c <= c_hi; ++c) {
      const Column& col = columns_[c];
      if (col.entries.empty()) continue;
      const bool interior = (c > c_lo && c < c_hi);
      const size_t begin = col.LowerBoundY(q.min_y, options_.epsilon);
      for (size_t i = begin; i < col.entries.size(); ++i) {
        const Point2D& p = col.entries[i].point;
        if (p.y > q.max_y) break;
        // Interior columns are fully covered in x: skip the x test.
        if (interior || (p.x >= q.min_x && p.x <= q.max_x)) {
          out.push_back(col.entries[i].id);
        }
      }
    }
    return out;
  }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  size_t NumColumns() const { return columns_.size(); }

  size_t ModelSizeBytes() const {
    size_t total = sizeof(*this) +
                   column_boundaries_.capacity() * sizeof(double);
    for (const Column& c : columns_) {
      total += c.segments.capacity() * sizeof(PlaSegment) +
               c.segment_first_keys.capacity() * sizeof(double);
    }
    return total;
  }

  size_t SizeBytes() const {
    size_t total = ModelSizeBytes();
    for (const Column& c : columns_) {
      total += c.entries.capacity() * sizeof(Entry) +
               c.ys.capacity() * sizeof(double);
    }
    return total;
  }

 private:
  struct Entry {
    Point2D point;
    uint32_t id;
  };

  struct Column {
    std::vector<Entry> entries;  // Sorted by y.
    std::vector<double> ys;      // Parallel y array for search.
    std::vector<PlaSegment> segments;
    std::vector<double> segment_first_keys;

    size_t LowerBoundY(double y, size_t epsilon) const {
      if (ys.empty()) return 0;
      if (segments.empty()) {
        return BinarySearchLowerBound(ys, y, 0, ys.size());
      }
      const auto it = std::upper_bound(segment_first_keys.begin(),
                                       segment_first_keys.end(), y);
      const size_t seg =
          (it == segment_first_keys.begin())
              ? 0
              : static_cast<size_t>(it - segment_first_keys.begin()) - 1;
      const size_t pred = segments[seg].model.PredictClamped(y, ys.size());
      return WindowLowerBoundWithFixup(ys, y, pred, epsilon + 1, epsilon + 1,
                                       ys.size());
    }
  };

  void BuildWithColumns(const std::vector<Point2D>& points, size_t columns) {
    const size_t threads = options_.build_threads;
    points_ = points;
    columns_.assign(columns, Column{});
    column_boundaries_.clear();

    // Learned x-CDF as equi-depth boundaries. Doubles with duplicates sort
    // to the same sequence under any thread count (content equality is all
    // the rank probes below read).
    std::vector<double> xs(points.size());
    ParallelForIndex(threads, points.size(),
                     [&](size_t i) { xs[i] = points[i].x; });
    ParallelSort(threads, &xs);
    column_boundaries_.reserve(columns);
    for (size_t c = 0; c < columns; ++c) {
      const size_t rank = c * xs.size() / columns;
      column_boundaries_.push_back(xs[rank]);
    }

    // Column routing parallelizes; the scatter itself stays serial so each
    // column receives its points in point order, exactly as the serial
    // build does.
    std::vector<uint32_t> col_of(points.size());
    ParallelForIndex(threads, points.size(), [&](size_t i) {
      col_of[i] = static_cast<uint32_t>(ColumnOf(points[i].x));
    });
    for (uint32_t i = 0; i < points.size(); ++i) {
      columns_[col_of[i]].entries.push_back(
          {points[i], i});
    }
    // Columns are independent: y-sort + model build fan out per column.
    ParallelForIndex(threads, columns_.size(), [&](size_t c) {
      Column& col = columns_[c];
      std::sort(col.entries.begin(), col.entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.point.y != b.point.y) return a.point.y < b.point.y;
                  return a.id < b.id;
                });
      col.ys.reserve(col.entries.size());
      for (const Entry& e : col.entries) col.ys.push_back(e.point.y);
      // ε-bounded model over the (dedup-fed) y array.
      if (col.ys.size() >= 32) {
        col.segments = BuildPlaDedupBlocked(
            col.ys, static_cast<double>(options_.epsilon), /*threads=*/1);
        col.segment_first_keys.reserve(col.segments.size());
        for (const PlaSegment& s : col.segments) {
          col.segment_first_keys.push_back(s.first_key);
        }
      }
    });
  }

  // Column of x: last boundary <= x.
  size_t ColumnOf(double x) const {
    const size_t lb = BinarySearchLowerBound(column_boundaries_, x, 0,
                                             column_boundaries_.size());
    if (lb < column_boundaries_.size() && column_boundaries_[lb] == x) {
      return lb;
    }
    return lb == 0 ? 0 : lb - 1;
  }

  // Cost-model tuning: counts entries touched per candidate column count on
  // the sample workload (scanned rows in touched columns + a fixed
  // per-column probe charge) and keeps the cheapest.
  size_t TuneColumns(const std::vector<Point2D>& points,
                     const std::vector<RangeQuery2D>& queries,
                     const std::vector<size_t>& candidates) {
    size_t best_columns = 64;
    double best_cost = -1.0;
    for (size_t candidate : candidates) {
      if (candidate > points.size()) continue;
      BuildWithColumns(points, candidate);
      constexpr double kPerColumnProbeCost = 24.0;  // Model + search charge.
      double cost = 0.0;
      for (const RangeQuery2D& q : queries) {
        const size_t c_lo = ColumnOf(q.min_x);
        const size_t c_hi = ColumnOf(q.max_x);
        cost += kPerColumnProbeCost * static_cast<double>(c_hi - c_lo + 1);
        for (size_t c = c_lo; c <= c_hi; ++c) {
          const Column& col = columns_[c];
          if (col.entries.empty()) continue;
          const size_t begin = col.LowerBoundY(q.min_y, options_.epsilon);
          size_t i = begin;
          while (i < col.entries.size() && col.entries[i].point.y <= q.max_y) {
            ++i;
          }
          cost += static_cast<double>(i - begin);
        }
      }
      if (best_cost < 0.0 || cost < best_cost) {
        best_cost = cost;
        best_columns = candidate;
      }
    }
    return best_columns;
  }

  Options options_;
  std::vector<Point2D> points_;
  std::vector<Column> columns_;
  std::vector<double> column_boundaries_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_FLOOD_H_
