#ifndef LIDX_MULTI_D_LEARNED_PACKING_H_
#define LIDX_MULTI_D_LEARNED_PACKING_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "spatial/geometry.h"
#include "spatial/rtree.h"

namespace lidx {

// Workload-aware R-tree packing (PLATON / RLR-tree lineage, tutorial
// §5.5): instead of the workload-oblivious Sort-Tile-Recursive order, the
// leaf layout is *learned* from a sample query workload. A top-down binary
// partitioner recursively chooses, per node, the cut (x-median or
// y-median) that minimizes the expected number of leaf pages the workload
// must touch — the same objective PLATON's learned partition policy
// optimizes, solved here greedily instead of with a learned policy
// network (the policy class is identical; only the search is simpler).
// The resulting groups feed RTree::BulkLoadWithLeaves, so query
// processing, invariants, and the dynamic-update path are the standard
// R-tree's.
class LearnedRTreePacker {
 public:
  struct Options {
    size_t leaf_capacity = RTree::kMaxEntries;
  };

  LearnedRTreePacker() : LearnedRTreePacker(Options()) {}
  explicit LearnedRTreePacker(const Options& options) : options_(options) {
    LIDX_CHECK(options_.leaf_capacity >= 1 &&
               options_.leaf_capacity <= RTree::kMaxEntries);
  }

  // Computes the leaf grouping for `points` under `workload`.
  std::vector<std::vector<RTree::LeafPayload>> Pack(
      const std::vector<Point2D>& points,
      const std::vector<RangeQuery2D>& workload) const {
    std::vector<RTree::LeafPayload> entries;
    entries.reserve(points.size());
    for (uint32_t i = 0; i < points.size(); ++i) {
      entries.push_back({points[i], i});
    }
    // Learned page shape: the workload's mean query aspect ratio. The
    // expected pages touched by a w x h query over pages of dims
    // (tx, ty) is (w/tx + 1)(h/ty + 1); at fixed page area it is
    // minimized when tx/ty = w/h, i.e. pages shaped like the queries.
    double aspect = 1.0;
    if (!workload.empty()) {
      double w_sum = 0.0, h_sum = 0.0;
      for (const RangeQuery2D& q : workload) {
        w_sum += q.max_x - q.min_x;
        h_sum += q.max_y - q.min_y;
      }
      if (h_sum > 0.0) aspect = w_sum / h_sum;
    }
    std::vector<std::vector<RTree::LeafPayload>> groups;
    if (!entries.empty()) {
      PackRecursive(&entries, 0, entries.size(), workload, aspect, &groups);
    }
    return groups;
  }

  // Convenience: packs and bulk-loads in one call.
  void BuildInto(RTree* tree, const std::vector<Point2D>& points,
                 const std::vector<RangeQuery2D>& workload) const {
    tree->BulkLoadWithLeaves(Pack(points, workload));
  }

 private:
  static Rect BoundsOf(const std::vector<RTree::LeafPayload>& entries,
                       size_t begin, size_t end) {
    Rect r;
    for (size_t i = begin; i < end; ++i) r.Expand(entries[i].point);
    return r;
  }

  // Expected page touches if [begin, end) became ceil(n/capacity) pages
  // inside `bounds`: every intersecting query pays the node's page count.
  double Cost(const Rect& bounds, size_t count,
              const std::vector<RangeQuery2D>& workload) const {
    const double pages = static_cast<double>(
        (count + options_.leaf_capacity - 1) / options_.leaf_capacity);
    double cost = 0.0;
    for (const RangeQuery2D& q : workload) {
      if (bounds.Intersects(Rect::FromQuery(q))) cost += pages;
    }
    return cost;
  }

  struct Candidate {
    int axis;      // 0 = x, 1 = y.
    double value;  // Cut: left gets coord < value.
  };

  static double CoordOf(const RTree::LeafPayload& e, int axis) {
    return axis == 0 ? e.point.x : e.point.y;
  }

  // Aspect-matched terminal tiling: slice [begin, end) into a c x r grid
  // of full pages whose dims approximate the learned aspect ratio.
  void MicroPack(std::vector<RTree::LeafPayload>* entries, size_t begin,
                 size_t end, double aspect,
                 std::vector<std::vector<RTree::LeafPayload>>* groups) const {
    const size_t n = end - begin;
    const size_t num_pages =
        (n + options_.leaf_capacity - 1) / options_.leaf_capacity;
    const Rect b = BoundsOf(*entries, begin, end);
    const double node_w = std::max(1e-12, b.max_x - b.min_x);
    const double node_h = std::max(1e-12, b.max_y - b.min_y);
    // Choose columns c (pages side by side in x) so page aspect
    // (node_w/c) / (node_h/r) ~ aspect, with c*r ~ num_pages.
    size_t best_cols = 1;
    double best_gap = -1.0;
    for (size_t cols = 1; cols <= num_pages; ++cols) {
      const size_t rows = (num_pages + cols - 1) / cols;
      const double page_aspect =
          (node_w / static_cast<double>(cols)) /
          (node_h / static_cast<double>(rows));
      const double gap = std::abs(std::log(page_aspect / aspect));
      if (best_gap < 0.0 || gap < best_gap) {
        best_gap = gap;
        best_cols = cols;
      }
    }
    // STR-style: sort by x, slice into columns, sort each column by y,
    // chunk into pages.
    std::sort(entries->begin() + begin, entries->begin() + end,
              [](const RTree::LeafPayload& a, const RTree::LeafPayload& c) {
                return a.point.x < c.point.x;
              });
    const size_t per_col = (n + best_cols - 1) / best_cols;
    for (size_t cs = begin; cs < end; cs += per_col) {
      const size_t ce = std::min(end, cs + per_col);
      std::sort(entries->begin() + cs, entries->begin() + ce,
                [](const RTree::LeafPayload& a,
                   const RTree::LeafPayload& c) {
                  return a.point.y < c.point.y;
                });
      for (size_t i = cs; i < ce; i += options_.leaf_capacity) {
        const size_t stop = std::min(ce, i + options_.leaf_capacity);
        groups->emplace_back(entries->begin() + i, entries->begin() + stop);
      }
    }
  }

  void PackRecursive(std::vector<RTree::LeafPayload>* entries, size_t begin,
                     size_t end, const std::vector<RangeQuery2D>& workload,
                     double aspect,
                     std::vector<std::vector<RTree::LeafPayload>>* groups)
      const {
    const size_t n = end - begin;
    if (n <= kMicroPackEntries * options_.leaf_capacity) {
      MicroPack(entries, begin, end, aspect, groups);
      return;
    }
    const Rect bounds = BoundsOf(*entries, begin, end);

    // Candidate cuts: the medians plus the workload's own query
    // boundaries inside this node (PLATON's partition policy searches
    // exactly these cuts — they are the ones that let a child dodge a hot
    // rectangle entirely).
    std::vector<Candidate> candidates;
    for (int axis = 0; axis < 2; ++axis) {
      std::nth_element(entries->begin() + begin,
                       entries->begin() + begin + n / 2,
                       entries->begin() + end,
                       [axis](const RTree::LeafPayload& a,
                              const RTree::LeafPayload& b) {
                         return CoordOf(a, axis) < CoordOf(b, axis);
                       });
      candidates.push_back(
          {axis, CoordOf((*entries)[begin + n / 2], axis)});
    }
    for (const RangeQuery2D& q : workload) {
      for (const double v : {q.min_x, q.max_x}) {
        if (v > bounds.min_x && v < bounds.max_x) candidates.push_back({0, v});
      }
      for (const double v : {q.min_y, q.max_y}) {
        if (v > bounds.min_y && v < bounds.max_y) candidates.push_back({1, v});
      }
      if (candidates.size() >= 2 + kMaxWorkloadCandidates) break;
    }

    int best_axis = 0;
    double best_value = 0.0;
    double best_cost = -1.0;
    const size_t min_side = 2 * options_.leaf_capacity;
    for (const Candidate& c : candidates) {
      Rect left_bounds, right_bounds;
      size_t left_count = 0;
      for (size_t i = begin; i < end; ++i) {
        if (CoordOf((*entries)[i], c.axis) < c.value) {
          left_bounds.Expand((*entries)[i].point);
          ++left_count;
        } else {
          right_bounds.Expand((*entries)[i].point);
        }
      }
      const size_t right_count = n - left_count;
      if (left_count < min_side || right_count < min_side) continue;
      const double cost = Cost(left_bounds, left_count, workload) +
                          Cost(right_bounds, right_count, workload);
      if (best_cost < 0.0 || cost < best_cost) {
        best_cost = cost;
        best_axis = c.axis;
        best_value = c.value;
      }
    }
    size_t mid;
    if (best_cost < 0.0) {
      // No admissible cut (degenerate coordinates): fall back to an x
      // median split by rank.
      mid = begin + n / 2;
      std::nth_element(entries->begin() + begin, entries->begin() + mid,
                       entries->begin() + end,
                       [](const RTree::LeafPayload& a,
                          const RTree::LeafPayload& b) {
                         return a.point.x < b.point.x;
                       });
    } else {
      const auto it = std::partition(
          entries->begin() + begin, entries->begin() + end,
          [best_axis, best_value](const RTree::LeafPayload& e) {
            return CoordOf(e, best_axis) < best_value;
          });
      mid = static_cast<size_t>(it - entries->begin());
    }
    PackRecursive(entries, begin, mid, workload, aspect, groups);
    PackRecursive(entries, mid, end, workload, aspect, groups);
  }

  static constexpr size_t kMaxWorkloadCandidates = 24;
  // Terminal tiling granularity (in pages): large enough that the c x r
  // grid can realize the learned aspect, small enough that the upper
  // cost-greedy cuts still shape the global layout.
  static constexpr size_t kMicroPackEntries = 64;

  Options options_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_LEARNED_PACKING_H_
