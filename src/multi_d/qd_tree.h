#ifndef LIDX_MULTI_D_QD_TREE_H_
#define LIDX_MULTI_D_QD_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "spatial/geometry.h"

namespace lidx {

// Qd-tree (Yang et al., SIGMOD 2020): workload-aware data layout learning
// (tutorial §5.2). Given the data and a representative query workload, a
// binary partitioning tree is grown greedily: each node picks the axis cut
// — candidate cut values come from the workload's own query boundaries —
// that minimizes the number of *records the workload must scan*, counting a
// block as scanned whenever a query's rectangle intersects it. Leaves are
// storage blocks; at query time only intersecting blocks are read. The
// benchmark metric (E11) is exactly the paper's: records/blocks scanned per
// query versus a workload-oblivious layout.
//
// Taxonomy position: multi-dimensional / immutable / hybrid (layout
// learning over a partition tree) / native space.
class QdTree {
 public:
  struct Options {
    size_t min_block_size = 256;   // Stop splitting below 2x this.
    size_t max_leaves = 4096;
  };

  QdTree() = default;

  void Build(const std::vector<Point2D>& points,
             const std::vector<RangeQuery2D>& workload) {
    Build(points, workload, Options());
  }

  void Build(const std::vector<Point2D>& points,
             const std::vector<RangeQuery2D>& workload,
             const Options& options) {
    options_ = options;
    points_ = points;
    num_leaves_ = 0;
    root_ = std::make_unique<QdNode>();
    root_->bounds = {0.0, 0.0, 1.0, 1.0};
    std::vector<uint32_t> ids(points.size());
    for (uint32_t i = 0; i < points.size(); ++i) ids[i] = i;

    // Candidate cuts: every query boundary in each axis.
    std::vector<double> x_cuts, y_cuts;
    for (const RangeQuery2D& q : workload) {
      x_cuts.push_back(q.min_x);
      x_cuts.push_back(q.max_x);
      y_cuts.push_back(q.min_y);
      y_cuts.push_back(q.max_y);
    }
    std::sort(x_cuts.begin(), x_cuts.end());
    x_cuts.erase(std::unique(x_cuts.begin(), x_cuts.end()), x_cuts.end());
    std::sort(y_cuts.begin(), y_cuts.end());
    y_cuts.erase(std::unique(y_cuts.begin(), y_cuts.end()), y_cuts.end());

    BuildRecursive(root_.get(), std::move(ids), workload, x_cuts, y_cuts);
  }

  // Ids of points in `q`, plus scan accounting.
  struct QueryResult {
    std::vector<uint32_t> ids;
    size_t blocks_scanned = 0;
    size_t records_scanned = 0;
  };

  QueryResult RangeQuery(const RangeQuery2D& q) const {
    QueryResult result;
    if (root_ != nullptr) QueryRecursive(root_.get(), q, &result);
    return result;
  }

  size_t size() const { return points_.size(); }
  size_t NumLeaves() const { return num_leaves_; }

  size_t SizeBytes() const {
    return sizeof(*this) + points_.capacity() * sizeof(Point2D) +
           SizeBytesRecursive(root_.get());
  }

  // Test hook: leaves partition the data (every id in exactly one leaf).
  void CheckInvariants() const {
    std::vector<uint32_t> seen;
    CollectIds(root_.get(), &seen);
    std::sort(seen.begin(), seen.end());
    LIDX_CHECK(seen.size() == points_.size());
    for (uint32_t i = 0; i < seen.size(); ++i) LIDX_CHECK(seen[i] == i);
  }

 private:
  struct QdNode {
    Rect bounds;
    // Internal: cut axis (0=x, 1=y) and value.
    int axis = -1;
    double cut = 0.0;
    std::unique_ptr<QdNode> left;   // < cut.
    std::unique_ptr<QdNode> right;  // >= cut.
    std::vector<uint32_t> ids;      // Leaf payload.
  };

  // Expected scan cost of holding `ids` as a single block under `workload`:
  // every intersecting query reads the whole block.
  static size_t BlockCost(const Rect& bounds, size_t count,
                          const std::vector<RangeQuery2D>& workload) {
    size_t cost = 0;
    for (const RangeQuery2D& q : workload) {
      if (bounds.Intersects(Rect::FromQuery(q))) cost += count;
    }
    return cost;
  }

  void BuildRecursive(QdNode* node, std::vector<uint32_t> ids,
                      const std::vector<RangeQuery2D>& workload,
                      const std::vector<double>& x_cuts,
                      const std::vector<double>& y_cuts) {
    if (ids.size() < options_.min_block_size * 2 ||
        num_leaves_ + 1 >= options_.max_leaves) {
      node->ids = std::move(ids);
      ++num_leaves_;
      return;
    }
    const size_t parent_cost = BlockCost(node->bounds, ids.size(), workload);

    // Greedy: evaluate every candidate cut inside this node's bounds.
    int best_axis = -1;
    double best_cut = 0.0;
    size_t best_cost = parent_cost;
    for (int axis = 0; axis < 2; ++axis) {
      const std::vector<double>& cuts = (axis == 0) ? x_cuts : y_cuts;
      const double lo = (axis == 0) ? node->bounds.min_x : node->bounds.min_y;
      const double hi = (axis == 0) ? node->bounds.max_x : node->bounds.max_y;
      for (double cut : cuts) {
        if (cut <= lo || cut >= hi) continue;
        size_t left_count = 0;
        for (uint32_t id : ids) {
          const double v = (axis == 0) ? points_[id].x : points_[id].y;
          if (v < cut) ++left_count;
        }
        const size_t right_count = ids.size() - left_count;
        if (left_count < options_.min_block_size ||
            right_count < options_.min_block_size) {
          continue;
        }
        Rect left_bounds = node->bounds;
        Rect right_bounds = node->bounds;
        if (axis == 0) {
          left_bounds.max_x = cut;
          right_bounds.min_x = cut;
        } else {
          left_bounds.max_y = cut;
          right_bounds.min_y = cut;
        }
        const size_t cost = BlockCost(left_bounds, left_count, workload) +
                            BlockCost(right_bounds, right_count, workload);
        if (cost < best_cost) {
          best_cost = cost;
          best_axis = axis;
          best_cut = cut;
        }
      }
    }
    if (best_axis < 0) {
      // No cut improves on keeping the block whole.
      node->ids = std::move(ids);
      ++num_leaves_;
      return;
    }

    node->axis = best_axis;
    node->cut = best_cut;
    std::vector<uint32_t> left_ids, right_ids;
    for (uint32_t id : ids) {
      const double v = (best_axis == 0) ? points_[id].x : points_[id].y;
      if (v < best_cut) {
        left_ids.push_back(id);
      } else {
        right_ids.push_back(id);
      }
    }
    ids.clear();
    ids.shrink_to_fit();
    node->left = std::make_unique<QdNode>();
    node->right = std::make_unique<QdNode>();
    node->left->bounds = node->bounds;
    node->right->bounds = node->bounds;
    if (best_axis == 0) {
      node->left->bounds.max_x = best_cut;
      node->right->bounds.min_x = best_cut;
    } else {
      node->left->bounds.max_y = best_cut;
      node->right->bounds.min_y = best_cut;
    }
    BuildRecursive(node->left.get(), std::move(left_ids), workload, x_cuts,
                   y_cuts);
    BuildRecursive(node->right.get(), std::move(right_ids), workload, x_cuts,
                   y_cuts);
  }

  void QueryRecursive(const QdNode* node, const RangeQuery2D& q,
                      QueryResult* result) const {
    if (!node->bounds.Intersects(Rect::FromQuery(q))) return;
    if (node->axis < 0) {
      ++result->blocks_scanned;
      result->records_scanned += node->ids.size();
      for (uint32_t id : node->ids) {
        if (q.Contains(points_[id])) result->ids.push_back(id);
      }
      return;
    }
    QueryRecursive(node->left.get(), q, result);
    QueryRecursive(node->right.get(), q, result);
  }

  size_t SizeBytesRecursive(const QdNode* node) const {
    if (node == nullptr) return 0;
    return sizeof(QdNode) + node->ids.capacity() * sizeof(uint32_t) +
           SizeBytesRecursive(node->left.get()) +
           SizeBytesRecursive(node->right.get());
  }

  void CollectIds(const QdNode* node, std::vector<uint32_t>* out) const {
    if (node == nullptr) return;
    for (uint32_t id : node->ids) out->push_back(id);
    CollectIds(node->left.get(), out);
    CollectIds(node->right.get(), out);
  }

  Options options_;
  std::vector<Point2D> points_;
  std::unique_ptr<QdNode> root_;
  size_t num_leaves_ = 0;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_QD_TREE_H_
