#ifndef LIDX_MULTI_D_ZM_INDEX3D_H_
#define LIDX_MULTI_D_ZM_INDEX3D_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/search.h"
#include "models/plr.h"
#include "sfc/morton.h"
#include "sfc/zrange3d.h"

namespace lidx {

// A 3-D point in the unit cube.
struct Point3D {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Point3D& a, const Point3D& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

// Axis-aligned 3-D box query (inclusive bounds).
struct BoxQuery3D {
  double min_x, min_y, min_z;
  double max_x, max_y, max_z;

  bool Contains(const Point3D& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y &&
           p.z >= min_z && p.z <= max_z;
  }
};

// 3-D ZM-index: demonstrates that the projected-space recipe (tutorial
// Approach 2) is dimension-generic — quantize, interleave (3-D Morton),
// sort, learn the code CDF, and answer box queries by scanning code order
// with 3-D BIGMIN leapfrogging. The curve-locality tax grows with
// dimension (a box shatters into more intervals), which is the scaling
// caveat §6.1 raises.
//
// Taxonomy position: multi-dimensional (3-D) / immutable / pure /
// projected.
class ZmIndex3D {
 public:
  struct Options {
    // <= 17 so the 3*bits-bit codes stay below 2^53 and remain exactly
    // representable as double for the learned model (Morton3D itself
    // supports up to 21 bits per dimension).
    int bits_per_dim = 16;
    size_t epsilon = 64;
    // Same contract as ZmIndex::Options::build_threads: encode/sort/PLA
    // parallelize; entries and codes are thread-count-invariant, PLA seams
    // may differ with the same ε-guarantee. 1 = fully serial.
    size_t build_threads = 1;
  };

  ZmIndex3D() = default;

  void Build(const std::vector<Point3D>& points) {
    Build(points, Options());
  }

  void Build(const std::vector<Point3D>& points, const Options& options) {
    LIDX_CHECK(options.bits_per_dim >= 1 && options.bits_per_dim <= 17);
    options_ = options;
    const size_t threads = options.build_threads;
    const size_t n = points.size();
    entries_.assign(n, ZEntry{});
    ParallelForIndex(threads, n, [&](size_t i) {
      entries_[i] = {EncodePoint(points[i]), points[i],
                     static_cast<uint32_t>(i)};
    });
    ParallelSort(threads, &entries_,
                 [](const ZEntry& a, const ZEntry& b) {
                   if (a.code != b.code) return a.code < b.code;
                   return a.id < b.id;
                 });
    codes_.assign(n, 0);
    ParallelForIndex(threads, n, [&](size_t i) { codes_[i] = entries_[i].code; });

    segments_ = BuildPlaDedupBlocked(
        codes_, static_cast<double>(options_.epsilon), threads);
    segment_first_keys_.clear();
    segment_first_keys_.reserve(segments_.size());
    for (const PlaSegment& s : segments_) {
      segment_first_keys_.push_back(s.first_key);
    }
  }

  std::vector<uint32_t> FindExact(const Point3D& p) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    const uint64_t code = EncodePoint(p);
    for (size_t i = LowerBoundCode(code);
         i < entries_.size() && entries_[i].code == code; ++i) {
      if (entries_[i].point == p) out.push_back(entries_[i].id);
    }
    return out;
  }

  std::vector<uint32_t> BoxQuery(const BoxQuery3D& q) const {
    std::vector<uint32_t> out;
    if (entries_.empty()) return out;
    sfc::ZBox3D box;
    box.min_x = sfc::Quantize(q.min_x, options_.bits_per_dim);
    box.min_y = sfc::Quantize(q.min_y, options_.bits_per_dim);
    box.min_z = sfc::Quantize(q.min_z, options_.bits_per_dim);
    box.max_x = sfc::Quantize(q.max_x, options_.bits_per_dim);
    box.max_y = sfc::Quantize(q.max_y, options_.bits_per_dim);
    box.max_z = sfc::Quantize(q.max_z, options_.bits_per_dim);
    const uint64_t zmin =
        sfc::MortonEncode3D(box.min_x, box.min_y, box.min_z);
    const uint64_t zmax =
        sfc::MortonEncode3D(box.max_x, box.max_y, box.max_z);

    size_t i = LowerBoundCode(zmin);
    while (i < entries_.size() && entries_[i].code <= zmax) {
      const uint64_t code = entries_[i].code;
      if (sfc::ZCodeInBox3D(code, box)) {
        for (; i < entries_.size() && entries_[i].code == code; ++i) {
          if (q.Contains(entries_[i].point)) out.push_back(entries_[i].id);
        }
        continue;
      }
      const uint64_t next = sfc::BigMin3D(code, box);
      if (next == UINT64_MAX || next > zmax) break;
      LIDX_DCHECK(next > code);
      i = LowerBoundCode(next);
    }
    return out;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t NumSegments() const { return segments_.size(); }

  size_t SizeBytes() const {
    return sizeof(*this) + entries_.capacity() * sizeof(ZEntry) +
           codes_.capacity() * sizeof(uint64_t) +
           segments_.capacity() * sizeof(PlaSegment) +
           segment_first_keys_.capacity() * sizeof(double);
  }

 private:
  struct ZEntry {
    uint64_t code;
    Point3D point;
    uint32_t id;
  };

  uint64_t EncodePoint(const Point3D& p) const {
    return sfc::MortonEncode3D(sfc::Quantize(p.x, options_.bits_per_dim),
                               sfc::Quantize(p.y, options_.bits_per_dim),
                               sfc::Quantize(p.z, options_.bits_per_dim));
  }

  size_t LowerBoundCode(uint64_t code) const {
    const double k = static_cast<double>(code);
    const auto it = std::upper_bound(segment_first_keys_.begin(),
                                     segment_first_keys_.end(), k);
    const size_t seg =
        (it == segment_first_keys_.begin())
            ? 0
            : static_cast<size_t>(it - segment_first_keys_.begin()) - 1;
    const size_t pred = segments_[seg].model.PredictClamped(k, codes_.size());
    return WindowLowerBoundWithFixup(codes_, code, pred,
                                     options_.epsilon + 1,
                                     options_.epsilon + 1, codes_.size());
  }

  Options options_;
  std::vector<ZEntry> entries_;
  std::vector<uint64_t> codes_;
  std::vector<PlaSegment> segments_;
  std::vector<double> segment_first_keys_;
};

}  // namespace lidx

#endif  // LIDX_MULTI_D_ZM_INDEX3D_H_
