#ifndef LIDX_SERVING_SHARDED_INDEX_H_
#define LIDX_SERVING_SHARDED_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/invariants.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/search.h"
#include "common/thread_annotations.h"
#include "lsm/merge.h"

namespace lidx {

namespace serving_detail {

// Uniform bulk-load adapter over the heterogeneous index constructors:
// (keys, values) BulkLoad (ALEX, LIPP, DynamicPgm, ConcurrentLearnedIndex),
// (keys, values) Build (PgmIndex, RMI-style frozen indexes), and
// pair-vector BulkLoad (B+-tree).
template <typename Index, typename Key, typename Value>
void BulkLoadInto(Index* index, std::vector<Key> keys,
                  std::vector<Value> values) {
  if constexpr (requires { index->BulkLoad(keys, values); }) {
    index->BulkLoad(std::move(keys), std::move(values));
  } else if constexpr (requires {
                         index->Build(std::move(keys), std::move(values));
                       }) {
    index->Build(std::move(keys), std::move(values));
  } else {
    std::vector<std::pair<Key, Value>> pairs(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      pairs[i] = {keys[i], values[i]};
    }
    index->BulkLoad(pairs);
  }
}

template <typename Index, typename Key, typename Value>
concept HasLookupBatch = requires(const Index& index, const Key* k, size_t n,
                                  Value* out) {
  index.LookupBatch(k, n, out);
};

template <typename Index>
concept HasSizeBytes = requires(const Index& index) {
  { index.SizeBytes() } -> std::convertible_to<size_t>;
};

}  // namespace serving_detail

// Range-sharded concurrent serving layer over any of the repo's 1-D
// indexes (tutorial §6.5: concurrency as a first-class citizen; design
// informed by *Are Updatable Learned Indexes Ready?*, PAPERS.md).
//
// Layout. Keys are range-partitioned across `num_shards` shards whose
// boundaries are quantiles of a sample CDF taken at BulkLoad, so shards
// stay balanced under skewed key distributions. Each shard is a small
// multi-version structure:
//
//   active buffer  -> sealed buffers -> sorted delta -> snapshot index
//   (append-only)     (immutable)       (immutable)     (immutable Index)
//
//  * Writers append {key, value, tombstone} entries to the shard's active
//    buffer under a per-shard writer mutex (writers contend only within a
//    shard). A full buffer is *sealed* — moved intact onto the sealed
//    list, O(1) — and replaced by a fresh one, so writer latency has no
//    rebuild cliff: the p999 insert is a seal, not a retrain.
//  * A drain task on the shared ThreadPool merges sealed buffers into the
//    sorted delta (newest-wins, tombstone-preserving, via lsm/merge.h
//    MergeStreams — the shard-local memtable draining through shared
//    compaction) and, when the delta outgrows `rebuild_fraction` of the
//    snapshot, rebuilds the snapshot index from scratch via the index's
//    own bulk load. All heavy work happens on immutable inputs, off the
//    writer path.
//  * Readers never block and take no locks. A read pins an epoch
//    (common/epoch.h), loads the shard's current State pointer, and probes
//    newest-to-oldest: active buffer (backwards linear scan), sealed
//    buffers, delta (binary search), snapshot (learned lookup). Epoch
//    reclamation guarantees the State and everything it references stays
//    alive until the reader unpins.
//
// Memory-order contract (kept in sync with common/epoch.h):
//  * Shard::state is published with a release store and read with acquire
//    loads; States are immutable after publication.
//  * Buffer entries are published by a release store of Buffer::size;
//    readers acquire-load size and may then read slots [0, size). Slots
//    are append-only — a published entry is never overwritten.
//  * Old States are unlinked (state.store) *before* EpochManager::Retire,
//    and freed only at quiescence; components shared between consecutive
//    States (snapshot, delta, buffers) are refcounted via shared_ptr,
//    whose count is only manipulated by writers/drainers, never readers.
template <typename Index, typename Key = uint64_t, typename Value = uint64_t>
class ShardedIndex {
 public:
  struct Options {
    size_t num_shards = 16;
    // Active write-buffer capacity (entries). Smaller buffers mean
    // cheaper read-side scans but more frequent seals; keep >= 1000/x to
    // hold seals (the slowest insert path) under the p999 mark.
    size_t buffer_capacity = 128;
    // CDF sample size used to learn shard boundaries at BulkLoad.
    size_t sample_size = 8192;
    // The snapshot is rebuilt when the merged delta exceeds
    // max(rebuild_min_delta, rebuild_fraction * snapshot entries).
    size_t rebuild_min_delta = 4096;
    double rebuild_fraction = 0.25;
    // Drain on the shared thread pool (true) or inline on the writer
    // thread after each seal (false; deterministic, used by fuzz tests).
    bool background_drain = true;
    // Threads used to bulk-load the per-shard snapshots.
    size_t build_threads = 1;
  };

  explicit ShardedIndex(const Options& options = Options(),
                        EpochManager* epoch = &EpochManager::Shared())
      : options_(options), epoch_(epoch) {
    LIDX_CHECK(options_.num_shards >= 1);
    LIDX_CHECK(options_.buffer_capacity >= 1);
    num_shards_ = options_.num_shards;
    boundaries_.assign(num_shards_, Key{});
    shards_ = std::make_unique<Shard[]>(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      shards_[s].state.store(EmptyState(), std::memory_order_relaxed);
    }
  }

  ~ShardedIndex() {
    WaitForDrains();
    for (size_t s = 0; s < num_shards_; ++s) {
      // lidx-lint: allow(epoch-guard): destructor — readers are gone.
      delete shards_[s].state.load(std::memory_order_relaxed);
    }
    // Retired States self-contain their payloads (shared_ptr), so they
    // may outlive this index; nudge the collector anyway.
    epoch_->ReclaimSome();
  }

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  // Bulk-loads sorted strictly-increasing keys. Shard boundaries are the
  // quantiles of an evenly spaced key sample (the empirical CDF), so each
  // shard receives ~n/num_shards keys regardless of key-space skew. Not
  // thread-safe; call before sharing the index.
  void BulkLoad(const std::vector<Key>& keys,
                const std::vector<Value>& values) {
    LIDX_CHECK(keys.size() == values.size());
    const size_t n = keys.size();
    boundaries_.assign(num_shards_, n == 0 ? Key{} : keys.front());
    if (n > 0) {
      // Sample the CDF: up to sample_size evenly spaced (key, rank)
      // points, then place boundary s at the sample's s/num_shards
      // quantile. With sorted input the sample quantile converges on the
      // exact rank quantile as the sample grows.
      const size_t sample_n = std::min(options_.sample_size, n);
      for (size_t s = 1; s < num_shards_; ++s) {
        const size_t sample_rank = s * sample_n / num_shards_;
        boundaries_[s] = keys[sample_rank * (n - 1) / (sample_n - 1 + (sample_n == 1))];
      }
    }
    // Boundary keys must be strictly increasing for routing; collapse
    // duplicate quantiles (tiny datasets) by leaving later shards empty.
    for (size_t s = 1; s < num_shards_; ++s) {
      if (boundaries_[s] < boundaries_[s - 1]) {
        boundaries_[s] = boundaries_[s - 1];
      }
    }

    // Per-shard key ranges, then parallel snapshot builds.
    std::vector<size_t> starts(num_shards_ + 1, 0);
    for (size_t s = 1; s < num_shards_; ++s) {
      starts[s] = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), boundaries_[s]) -
          keys.begin());
    }
    starts[num_shards_] = n;
    ParallelForIndex(options_.build_threads, num_shards_, [&](size_t s) {
      const size_t begin = starts[s];
      const size_t end = starts[s + 1];
      State* state = new State();
      state->active = std::make_shared<Buffer>(options_.buffer_capacity);
      if (begin < end) {
        auto index = std::make_shared<Index>();
        serving_detail::BulkLoadInto<Index, Key, Value>(
            index.get(), std::vector<Key>(keys.begin() + begin,
                                          keys.begin() + end),
            std::vector<Value>(values.begin() + begin, values.begin() + end));
        state->snapshot = std::move(index);
        state->snapshot_size = end - begin;
      }
      State* old = shards_[s].state.exchange(state, std::memory_order_acq_rel);
      delete old;  // BulkLoad is not concurrent with readers by contract.
    });
  }

  // Lock-free point lookup; never blocks on writers or drains.
  std::optional<Value> Find(const Key& key) const {
    const Shard& shard = shards_[Route(key)];
    EpochManager::Guard guard = epoch_->Pin();
    const State* state = shard.state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    // 1. Active buffer, newest entry first.
    if (const Entry* e = ProbeBuffer(*state->active, key)) {
      return e->tombstone ? std::nullopt : std::optional<Value>(e->value);
    }
    // 2. Sealed buffers, newest buffer first.
    for (auto it = state->sealed.rbegin(); it != state->sealed.rend(); ++it) {
      if (const Entry* e = ProbeBuffer(**it, key)) {
        return e->tombstone ? std::nullopt : std::optional<Value>(e->value);
      }
    }
    // 3. Sorted delta.
    if (state->delta != nullptr) {
      const Delta& d = *state->delta;
      const size_t pos = static_cast<size_t>(
          std::lower_bound(d.keys.begin(), d.keys.end(), key) -
          d.keys.begin());
      if (pos < d.keys.size() && d.keys[pos] == key) {
        return d.tombstones[pos] ? std::nullopt
                                 : std::optional<Value>(d.values[pos]);
      }
    }
    // 4. Snapshot index.
    if (state->snapshot != nullptr) return state->snapshot->Find(key);
    return std::nullopt;
  }

  bool Contains(const Key& key) const { return Find(key).has_value(); }

  // Batched lookups routed per shard under a single epoch pin. Keys that
  // fall through every buffer level are resolved against the snapshot via
  // its own LookupBatch (AMAC prefetch interleaving) when it has one.
  // Contract matches the 1-D indexes: out[i] = Value{} for absent keys.
  void FindBatch(const Key* keys, size_t count, Value* out) const {
    EpochManager::Guard guard = epoch_->Pin();
    std::vector<const State*> states(num_shards_, nullptr);
    std::vector<std::vector<size_t>> snapshot_pending(num_shards_);
    for (size_t i = 0; i < count; ++i) {
      const size_t s = Route(keys[i]);
      if (states[s] == nullptr) {
        states[s] = shards_[s].state.load(std::memory_order_acquire);
        epoch_->AssertProtected(states[s]);
      }
      const State* state = states[s];
      if (std::optional<std::optional<Value>> hit =
              ProbeBuffersAndDelta(*state, keys[i])) {
        out[i] = hit->has_value() ? **hit : Value{};
      } else if (state->snapshot != nullptr) {
        snapshot_pending[s].push_back(i);
      } else {
        out[i] = Value{};
      }
    }
    for (size_t s = 0; s < num_shards_; ++s) {
      const std::vector<size_t>& pending = snapshot_pending[s];
      if (pending.empty()) continue;
      const Index& snapshot = *states[s]->snapshot;
      if constexpr (serving_detail::HasLookupBatch<Index, Key, Value>) {
        std::vector<Key> batch_keys(pending.size());
        std::vector<Value> batch_out(pending.size());
        for (size_t j = 0; j < pending.size(); ++j) {
          batch_keys[j] = keys[pending[j]];
        }
        snapshot.LookupBatch(batch_keys.data(), batch_keys.size(),
                             batch_out.data());
        for (size_t j = 0; j < pending.size(); ++j) {
          out[pending[j]] = batch_out[j];
        }
      } else {
        for (const size_t i : pending) {
          out[i] = snapshot.Find(keys[i]).value_or(Value{});
        }
      }
    }
  }

  void Insert(const Key& key, const Value& value) {
    Upsert(key, value, /*tombstone=*/false);
  }

  // Blind tombstone write plus a pre-read for the return value (the
  // existence answer is racy under concurrent writers, like any
  // check-then-act; the tombstone itself is always correct).
  bool Erase(const Key& key) {
    const bool existed = Find(key).has_value();
    Upsert(key, Value{}, /*tombstone=*/true);
    return existed;
  }

  // Merged scan across every level of every overlapping shard. Bounds are
  // inclusive, matching the 1-D indexes.
  void RangeScan(const Key& lo, const Key& hi,
                 std::vector<std::pair<Key, Value>>* out) const {
    if (hi < lo) return;
    const size_t first = Route(lo);
    for (size_t s = first; s < num_shards_; ++s) {
      if (s > first && boundaries_[s] > hi) break;
      CollectShardRange(s, lo, hi, out);
    }
  }

  // Live entry count (full merge walk; O(n), intended for tests).
  size_t size() const {
    std::vector<std::pair<Key, Value>> all;
    RangeScan(std::numeric_limits<Key>::lowest(),
              std::numeric_limits<Key>::max(), &all);
    return all.size();
  }

  size_t SizeBytes() const {
    size_t total = sizeof(*this) + boundaries_.capacity() * sizeof(Key);
    for (size_t s = 0; s < num_shards_; ++s) {
      EpochManager::Guard guard = epoch_->Pin();
      const State* state = shards_[s].state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      total += sizeof(State);
      total += state->active->capacity * sizeof(Entry);
      for (const auto& b : state->sealed) total += b->capacity * sizeof(Entry);
      if (state->delta != nullptr) {
        total += state->delta->keys.capacity() * sizeof(Key) +
                 state->delta->values.capacity() * sizeof(Value) +
                 state->delta->tombstones.capacity();
      }
      if (state->snapshot != nullptr) {
        if constexpr (serving_detail::HasSizeBytes<Index>) {
          total += state->snapshot->SizeBytes();
        }
      }
    }
    return total;
  }

  // Blocks until no drain task is queued or running. Writers should be
  // quiesced first or drains may keep re-arming.
  void WaitForDrains() const {
    while (pending_drains_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  // Forces every shard's buffered writes down into delta/snapshot (used
  // by tests to reach a deterministic fully-drained state).
  void FlushAll() {
    for (size_t s = 0; s < num_shards_; ++s) {
      {
        MutexLock lock(shards_[s].write_mu);
        State* state = shards_[s].state.load(std::memory_order_relaxed);
        if (state->active->size.load(std::memory_order_relaxed) > 0) {
          SealLocked(&shards_[s], state);
        }
      }
      TryScheduleDrain(s, /*force_inline=*/true);
    }
    WaitForDrains();
  }

  struct Stats {
    uint64_t seals;
    uint64_t drains;
    uint64_t rebuilds;
  };
  Stats GetStats() const {
    return Stats{seal_count_.load(std::memory_order_relaxed),
                 drain_count_.load(std::memory_order_relaxed),
                 rebuild_count_.load(std::memory_order_relaxed)};
  }

  size_t num_shards() const { return num_shards_; }

  // Structural invariants over every published shard state. Lock-free and
  // safe to run concurrently with readers, writers, and drains. Aborts on
  // violation.
  void CheckInvariants() const {
    LIDX_INVARIANT(boundaries_.size() == num_shards_,
                   "sharded: boundary per shard");
    invariants::CheckSorted(boundaries_, "sharded: boundaries non-decreasing");
    for (size_t s = 0; s < num_shards_; ++s) {
      EpochManager::Guard guard = epoch_->Pin();
      const State* state = shards_[s].state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      const size_t active_n =
          state->active->size.load(std::memory_order_acquire);
      LIDX_INVARIANT(active_n <= state->active->capacity,
                     "sharded: active buffer within capacity");
      const auto check_buffer = [&](const Buffer& b) {
        const size_t n = b.size.load(std::memory_order_acquire);
        LIDX_INVARIANT(n <= b.capacity, "sharded: buffer within capacity");
        if (num_shards_ > 1) {
          for (size_t i = 0; i < n; ++i) {
            LIDX_INVARIANT(Route(b.slots[i].key) == s,
                           "sharded: buffered key routes to its shard");
          }
        }
      };
      check_buffer(*state->active);
      for (const auto& b : state->sealed) check_buffer(*b);
      if (state->delta != nullptr) {
        const Delta& d = *state->delta;
        LIDX_INVARIANT(d.keys.size() == d.values.size() &&
                           d.keys.size() == d.tombstones.size(),
                       "sharded: delta arrays parallel");
        invariants::CheckStrictlySorted(d.keys, "sharded: delta sorted unique");
        if (num_shards_ > 1) {
          for (const Key& k : d.keys) {
            LIDX_INVARIANT(Route(k) == s,
                           "sharded: delta key routes to its shard");
          }
        }
      }
      if (state->snapshot != nullptr) {
        if constexpr (HasCheckInvariants<Index>) {
          state->snapshot->CheckInvariants();
        }
      }
    }
  }

 private:
  struct Entry {
    Key key;
    Value value;
    bool tombstone;
  };

  // Append-only write buffer. Entries [0, size) are immutable and
  // published by the release store of `size`; see the class comment.
  struct Buffer {
    explicit Buffer(size_t cap)
        : slots(std::make_unique<Entry[]>(cap)), capacity(cap) {}
    std::unique_ptr<Entry[]> slots;
    size_t capacity;
    std::atomic<size_t> size{0};
  };

  // Sorted, unique, tombstone-carrying delta level (the drained form of
  // sealed buffers). Immutable after construction.
  struct Delta {
    std::vector<Key> keys;
    std::vector<Value> values;
    std::vector<uint8_t> tombstones;
  };

  // One immutable version of a shard. Never mutated after its release
  // publication (the active Buffer's append tail is the one exception,
  // governed by Buffer::size).
  struct State {
    std::shared_ptr<const Index> snapshot;
    size_t snapshot_size = 0;
    std::shared_ptr<const Delta> delta;
    std::vector<std::shared_ptr<Buffer>> sealed;  // Oldest -> newest.
    std::shared_ptr<Buffer> active;
  };

  struct alignas(64) Shard {
    // Readers must hold an EpochManager::Guard to dereference the loaded
    // pointer; writers load/publish it under write_mu.
    std::atomic<State*> state{nullptr};  // lidx: epoch-protected
    Mutex write_mu;
    std::atomic<bool> drain_scheduled{false};
  };

  // Payload carried through lsm/merge.h newest-wins merges.
  struct Pending {
    Value value;
    uint8_t tombstone;
  };
  using Run = std::vector<std::pair<Key, Pending>>;

  State* EmptyState() {
    State* state = new State();
    state->active = std::make_shared<Buffer>(options_.buffer_capacity);
    return state;
  }

  // Immutable between BulkLoads: lock-free routing. Duplicate boundaries
  // (collapsed quantiles on tiny datasets) mark empty shards; the first
  // shard of a duplicate run owns the whole range, so normalize to it —
  // otherwise keys above the duplicated boundary would route to a shard
  // that never received the snapshot data.
  size_t Route(const Key& key) const {
    const size_t lb =
        BinarySearchLowerBound(boundaries_, key, 0, boundaries_.size());
    size_t s;
    if (lb < boundaries_.size() && boundaries_[lb] == key) {
      s = lb;
    } else {
      s = lb == 0 ? 0 : lb - 1;
    }
    while (s > 0 && boundaries_[s] == boundaries_[s - 1]) --s;
    return s;
  }

  // Newest matching entry in a buffer, or nullptr. Backwards scan so a
  // later upsert of the same key wins.
  static const Entry* ProbeBuffer(const Buffer& buffer, const Key& key) {
    const size_t n = buffer.size.load(std::memory_order_acquire);
    for (size_t i = n; i-- > 0;) {
      if (buffer.slots[i].key == key) return &buffer.slots[i];
    }
    return nullptr;
  }

  // Probes buffers + delta. Outer nullopt: not present at these levels
  // (fall through to snapshot). Inner nullopt: tombstoned (definitely
  // absent).
  std::optional<std::optional<Value>> ProbeBuffersAndDelta(
      const State& state, const Key& key) const {
    if (const Entry* e = ProbeBuffer(*state.active, key)) {
      return std::optional<std::optional<Value>>(
          e->tombstone ? std::nullopt : std::optional<Value>(e->value));
    }
    for (auto it = state.sealed.rbegin(); it != state.sealed.rend(); ++it) {
      if (const Entry* e = ProbeBuffer(**it, key)) {
        return std::optional<std::optional<Value>>(
            e->tombstone ? std::nullopt : std::optional<Value>(e->value));
      }
    }
    if (state.delta != nullptr) {
      const Delta& d = *state.delta;
      const size_t pos = static_cast<size_t>(
          std::lower_bound(d.keys.begin(), d.keys.end(), key) -
          d.keys.begin());
      if (pos < d.keys.size() && d.keys[pos] == key) {
        return std::optional<std::optional<Value>>(
            d.tombstones[pos] ? std::nullopt
                              : std::optional<Value>(d.values[pos]));
      }
    }
    return std::nullopt;
  }

  void Upsert(const Key& key, const Value& value, bool tombstone) {
    const size_t s = Route(key);
    Shard& shard = shards_[s];
    bool sealed = false;
    {
      MutexLock lock(shard.write_mu);
      // Writers are serialized by write_mu, so a relaxed load sees the
      // latest state (any prior publisher held this mutex).
      State* state = shard.state.load(std::memory_order_relaxed);
      Buffer* buffer = state->active.get();
      size_t n = buffer->size.load(std::memory_order_relaxed);
      if (n == buffer->capacity) {
        SealLocked(&shard, state);
        state = shard.state.load(std::memory_order_relaxed);
        buffer = state->active.get();
        n = 0;
        sealed = true;
      }
      buffer->slots[n] = Entry{key, value, tombstone};
      // Release-publish the appended entry (paired with the acquire load
      // in ProbeBuffer).
      buffer->size.store(n + 1, std::memory_order_release);
    }
    if (sealed) TryScheduleDrain(s, /*force_inline=*/false);
  }

  // Moves the full active buffer onto the sealed list. O(1): no sort, no
  // copy — this is the entire slow path a writer can hit, which is what
  // keeps insert p999 within a small factor of p50.
  void SealLocked(Shard* shard, State* state)
      LIDX_REQUIRES(shard->write_mu) {
    State* next = new State(*state);
    next->sealed.push_back(state->active);
    next->active = std::make_shared<Buffer>(options_.buffer_capacity);
    shard->state.store(next, std::memory_order_release);
    // Unlink-then-retire: `state` is unreachable to new readers; epoch
    // reclamation frees it once in-flight readers unpin.
    epoch_->RetireDelete(state);
    seal_count_.fetch_add(1, std::memory_order_relaxed);
  }

  bool NeedsDrain(const Shard& shard) const {
    EpochManager::Guard guard = epoch_->Pin();
    const State* state = shard.state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    return !state->sealed.empty();
  }

  void TryScheduleDrain(size_t s, bool force_inline) {
    Shard& shard = shards_[s];
    if (!NeedsDrain(shard)) return;
    if (shard.drain_scheduled.exchange(true, std::memory_order_acq_rel)) {
      return;  // A drain is already queued or running; it will re-check.
    }
    pending_drains_.fetch_add(1, std::memory_order_acq_rel);
    if (options_.background_drain && !force_inline) {
      ThreadPool::Shared().Submit([this, s] { DrainShard(s); });
    } else {
      DrainShard(s);
    }
  }

  // Runs on a pool worker (or inline). Merges sealed buffers into the
  // delta and rebuilds the snapshot when the delta outgrows it. At most
  // one drain per shard runs at a time (drain_scheduled), which is what
  // makes the sealed-prefix removal in the publish step sound.
  void DrainShard(size_t s) {
    Shard& shard = shards_[s];
    for (;;) {
      DrainOnce(&shard);
      shard.drain_scheduled.store(false, std::memory_order_release);
      // Re-arm if writers sealed more buffers while we merged. The
      // exchange closes the race with a concurrent TryScheduleDrain.
      if (!NeedsDrain(shard)) break;
      if (shard.drain_scheduled.exchange(true, std::memory_order_acq_rel)) {
        break;  // Someone else claimed the next round.
      }
    }
    epoch_->ReclaimSome();
    pending_drains_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void DrainOnce(Shard* shard) {
    // Capture immutable inputs under an epoch pin; the shared_ptr copies
    // keep them alive after unpinning, so the heavy merge below runs
    // without blocking writers or readers.
    std::shared_ptr<const Index> snapshot;
    size_t snapshot_size = 0;
    std::shared_ptr<const Delta> delta;
    std::vector<std::shared_ptr<Buffer>> sealed;
    {
      EpochManager::Guard guard = epoch_->Pin();
      const State* state = shard->state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      snapshot = state->snapshot;
      snapshot_size = state->snapshot_size;
      delta = state->delta;
      sealed = state->sealed;
    }
    const size_t merged_count = sealed.size();
    if (merged_count == 0) return;

    // Newest-first runs for the shared LSM merge: each sealed buffer
    // becomes a sorted run (newest entry per key wins within a buffer),
    // the existing delta is the oldest run.
    std::vector<Run> runs;
    runs.reserve(merged_count + 1);
    for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
      runs.push_back(BufferToRun(**it));
    }
    if (delta != nullptr) runs.push_back(DeltaToRun(*delta));
    Run merged = MergeStreams(std::move(runs), /*threads=*/1);

    std::shared_ptr<const Index> new_snapshot = snapshot;
    size_t new_snapshot_size = snapshot_size;
    std::shared_ptr<const Delta> new_delta;
    const size_t rebuild_threshold = std::max(
        options_.rebuild_min_delta,
        static_cast<size_t>(options_.rebuild_fraction *
                            static_cast<double>(snapshot_size)));
    if (merged.size() >= rebuild_threshold) {
      RebuildSnapshot(snapshot.get(), merged, &new_snapshot,
                      &new_snapshot_size);
      rebuild_count_.fetch_add(1, std::memory_order_relaxed);
    } else if (!merged.empty()) {
      auto d = std::make_shared<Delta>();
      d->keys.reserve(merged.size());
      d->values.reserve(merged.size());
      d->tombstones.reserve(merged.size());
      for (const auto& [k, p] : merged) {
        d->keys.push_back(k);
        d->values.push_back(p.value);
        d->tombstones.push_back(p.tombstone);
      }
      new_delta = std::move(d);
    }

    // Publish: splice the merged result in under the writer lock, keeping
    // whatever sealed buffers and active appends arrived meanwhile.
    {
      MutexLock lock(shard->write_mu);
      State* current = shard->state.load(std::memory_order_relaxed);
      State* next = new State();
      next->snapshot = std::move(new_snapshot);
      next->snapshot_size = new_snapshot_size;
      next->delta = std::move(new_delta);
      next->sealed.assign(current->sealed.begin() + merged_count,
                          current->sealed.end());
      next->active = current->active;
      shard->state.store(next, std::memory_order_release);
      epoch_->RetireDelete(current);
    }
    drain_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Sorted newest-wins run from an append-ordered buffer.
  static Run BufferToRun(const Buffer& buffer) {
    const size_t n = buffer.size.load(std::memory_order_acquire);
    Run run;
    run.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Entry& e = buffer.slots[i];
      run.emplace_back(e.key, Pending{e.value, e.tombstone ? uint8_t{1}
                                                           : uint8_t{0}});
    }
    std::stable_sort(run.begin(), run.end(), [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    // Keep the last (newest) entry of each equal-key group.
    Run deduped;
    deduped.reserve(run.size());
    for (size_t i = 0; i < run.size(); ++i) {
      if (i + 1 == run.size() || run[i + 1].first != run[i].first) {
        deduped.push_back(run[i]);
      }
    }
    return deduped;
  }

  static Run DeltaToRun(const Delta& delta) {
    Run run;
    run.reserve(delta.keys.size());
    for (size_t i = 0; i < delta.keys.size(); ++i) {
      run.emplace_back(delta.keys[i],
                       Pending{delta.values[i], delta.tombstones[i]});
    }
    return run;
  }

  // Merges the delta into a dump of the snapshot and bulk-loads a fresh
  // index. Tombstones die here: the shard owns its whole key range, so a
  // tombstone surviving to the bottom level deletes nothing below.
  void RebuildSnapshot(const Index* snapshot, const Run& merged,
                       std::shared_ptr<const Index>* out_snapshot,
                       size_t* out_size) {
    std::vector<std::pair<Key, Value>> base;
    if (snapshot != nullptr) {
      snapshot->RangeScan(std::numeric_limits<Key>::lowest(),
                          std::numeric_limits<Key>::max(), &base);
    }
    std::vector<Key> keys;
    std::vector<Value> values;
    keys.reserve(base.size() + merged.size());
    values.reserve(base.size() + merged.size());
    size_t di = 0;
    size_t bi = 0;
    while (di < merged.size() || bi < base.size()) {
      const bool take_delta =
          di < merged.size() &&
          (bi >= base.size() || merged[di].first <= base[bi].first);
      if (take_delta) {
        if (bi < base.size() && base[bi].first == merged[di].first) ++bi;
        if (!merged[di].second.tombstone) {
          keys.push_back(merged[di].first);
          values.push_back(merged[di].second.value);
        }
        ++di;
      } else {
        keys.push_back(base[bi].first);
        values.push_back(base[bi].second);
        ++bi;
      }
    }
    if (keys.empty()) {
      out_snapshot->reset();
      *out_size = 0;
      return;
    }
    auto index = std::make_shared<Index>();
    *out_size = keys.size();
    serving_detail::BulkLoadInto<Index, Key, Value>(
        index.get(), std::move(keys), std::move(values));
    *out_snapshot = std::move(index);
  }

  void CollectShardRange(size_t s, const Key& lo, const Key& hi,
                         std::vector<std::pair<Key, Value>>* out) const {
    EpochManager::Guard guard = epoch_->Pin();
    const State* state = shards_[s].state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    // Newest-wins merge via try_emplace: levels are visited newest first,
    // and the first emplace of a key sticks. nullopt marks a tombstone.
    std::map<Key, std::optional<Value>> window;
    const auto add_buffer = [&](const Buffer& b) {
      const size_t n = b.size.load(std::memory_order_acquire);
      for (size_t i = n; i-- > 0;) {
        const Entry& e = b.slots[i];
        if (e.key < lo || hi < e.key) continue;
        window.try_emplace(e.key, e.tombstone
                                      ? std::optional<Value>()
                                      : std::optional<Value>(e.value));
      }
    };
    add_buffer(*state->active);
    for (auto it = state->sealed.rbegin(); it != state->sealed.rend(); ++it) {
      add_buffer(**it);
    }
    if (state->delta != nullptr) {
      const Delta& d = *state->delta;
      size_t pos = static_cast<size_t>(
          std::lower_bound(d.keys.begin(), d.keys.end(), lo) -
          d.keys.begin());
      for (; pos < d.keys.size() && d.keys[pos] <= hi; ++pos) {
        window.try_emplace(d.keys[pos],
                           d.tombstones[pos]
                               ? std::optional<Value>()
                               : std::optional<Value>(d.values[pos]));
      }
    }
    if (state->snapshot != nullptr) {
      std::vector<std::pair<Key, Value>> from_snapshot;
      state->snapshot->RangeScan(lo, hi, &from_snapshot);
      for (const auto& [k, v] : from_snapshot) {
        window.try_emplace(k, std::optional<Value>(v));
      }
    }
    for (const auto& [k, v] : window) {
      if (v.has_value()) out->emplace_back(k, *v);
    }
  }

  Options options_;
  size_t num_shards_ = 1;
  std::vector<Key> boundaries_;
  std::unique_ptr<Shard[]> shards_;
  EpochManager* epoch_;
  std::atomic<size_t> pending_drains_{0};
  std::atomic<uint64_t> seal_count_{0};
  std::atomic<uint64_t> drain_count_{0};
  std::atomic<uint64_t> rebuild_count_{0};
};

}  // namespace lidx

#endif  // LIDX_SERVING_SHARDED_INDEX_H_
