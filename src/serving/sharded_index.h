#ifndef LIDX_SERVING_SHARDED_INDEX_H_
#define LIDX_SERVING_SHARDED_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/invariants.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/search.h"
#include "common/thread_annotations.h"
#include "lsm/merge.h"

namespace lidx {

namespace serving_detail {

// Uniform bulk-load adapter over the heterogeneous index constructors:
// (keys, values) BulkLoad (ALEX, LIPP, DynamicPgm, ConcurrentLearnedIndex),
// (keys, values) Build (PgmIndex, RMI-style frozen indexes), and
// pair-vector BulkLoad (B+-tree).
template <typename Index, typename Key, typename Value>
void BulkLoadInto(Index* index, std::vector<Key> keys,
                  std::vector<Value> values) {
  if constexpr (requires { index->BulkLoad(keys, values); }) {
    index->BulkLoad(std::move(keys), std::move(values));
  } else if constexpr (requires {
                         index->Build(std::move(keys), std::move(values));
                       }) {
    index->Build(std::move(keys), std::move(values));
  } else {
    std::vector<std::pair<Key, Value>> pairs(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      pairs[i] = {keys[i], values[i]};
    }
    index->BulkLoad(pairs);
  }
}

template <typename Index, typename Key, typename Value>
concept HasLookupBatch = requires(const Index& index, const Key* k, size_t n,
                                  Value* out) {
  index.LookupBatch(k, n, out);
};

template <typename Index>
concept HasSizeBytes = requires(const Index& index) {
  { index.SizeBytes() } -> std::convertible_to<size_t>;
};

}  // namespace serving_detail

// Range-sharded concurrent serving layer over any of the repo's 1-D
// indexes (tutorial §6.5: concurrency as a first-class citizen; design
// informed by *Are Updatable Learned Indexes Ready?*, PAPERS.md).
//
// Layout. Keys are range-partitioned across shards whose boundaries are
// quantiles of a sample CDF taken at BulkLoad, so shards stay balanced
// under skewed key distributions. The shard array and its boundaries live
// in an immutable, epoch-protected Table so the partitioning itself can be
// re-learned at runtime (Rebalance) without ever blocking readers. Each
// shard is a small multi-version structure:
//
//   active buffer  -> sealed buffers -> sorted delta -> snapshot index
//   (append-only)     (immutable)       (immutable)     (immutable Index)
//
//  * Writers append {key, value, tombstone} entries to the shard's active
//    buffer under a per-shard writer mutex (writers contend only within a
//    shard). A full buffer is *sealed* — moved intact onto the sealed
//    list, O(1) — and replaced by a fresh one, so writer latency has no
//    rebuild cliff: the p999 insert is a seal, not a retrain.
//  * A drain task on the shared ThreadPool merges sealed buffers into the
//    sorted delta (newest-wins, tombstone-preserving, via lsm/merge.h
//    MergeStreams — the shard-local memtable draining through shared
//    compaction) and, when the delta outgrows `rebuild_fraction` of the
//    snapshot, rebuilds the snapshot index from scratch via the index's
//    own bulk load. All heavy work happens on immutable inputs, off the
//    writer path.
//  * Readers never block and take no locks. A read pins an epoch
//    (common/epoch.h), loads the table, routes, loads the shard's current
//    State pointer, and probes newest-to-oldest: active buffer (backwards
//    linear scan), sealed buffers, delta (binary search), snapshot
//    (learned lookup). Epoch reclamation guarantees the Table, the State
//    and everything they reference stay alive until the reader unpins.
//
// Adaptation hooks (the serving-side "sense" and "act" surface used by
// src/adapt/):
//  * With Options::collect_shard_stats, readers bump per-shard lookup and
//    probe-depth counters (own cache line; relaxed). TakeShardStats()
//    snapshots them together with per-level entry counts — the signal a
//    controller turns into skew / staleness decisions.
//  * Rebalance(new_num_shards) re-learns the partitioning online: it
//    collects every live entry, recomputes boundaries as *traffic-weighted*
//    quantiles (pure data quantiles when stats are off), bulk-loads fresh
//    per-shard snapshots, and release-publishes a new Table; the old one
//    is epoch-retired. Readers keep probing the old table under their
//    pins; writers stall on the shard mutexes and retry against the new
//    table.
//  * RequestShardRebuild(s) force-drains one shard down to a freshly
//    bulk-loaded snapshot even when the delta is below the rebuild
//    threshold — the "retrain this model now" action.
//
// Memory-order contract (kept in sync with common/epoch.h):
//  * `table_` and Shard::state are published with release stores and read
//    with acquire loads; Tables and States are immutable after publication
//    (the active Buffer's append tail and the shard stat counters are the
//    exceptions, governed by Buffer::size and relaxed atomics).
//  * Buffer entries are published by a release store of Buffer::size;
//    readers acquire-load size and may then read slots [0, size). Slots
//    are append-only — a published entry is never overwritten.
//  * Old Tables/States are unlinked (store) *before* EpochManager::Retire,
//    and freed only at quiescence; components shared between consecutive
//    States (snapshot, delta, buffers) are refcounted via shared_ptr,
//    whose count is only manipulated by writers/drainers, never readers.
//  * The drain/rebalance handshake (drains_paused_, pending_drains_) uses
//    seq_cst: TryScheduleDrain registers in pending_drains_ and *then*
//    re-checks drains_paused_ and the table identity, while Rebalance
//    stores drains_paused_ and *then* reads pending_drains_. The seq_cst
//    total order makes the classic store/load (Dekker) race impossible:
//    either the drain backs off, or the rebalance waits for it — so no
//    drain task ever holds a Table pointer across that table's retirement.
template <typename Index, typename Key = uint64_t, typename Value = uint64_t>
class ShardedIndex {
 public:
  struct Options {
    size_t num_shards = 16;
    // Active write-buffer capacity (entries). Smaller buffers mean
    // cheaper read-side scans but more frequent seals; keep >= 1000/x to
    // hold seals (the slowest insert path) under the p999 mark.
    size_t buffer_capacity = 128;
    // CDF sample size used to learn shard boundaries at BulkLoad.
    size_t sample_size = 8192;
    // The snapshot is rebuilt when the merged delta exceeds
    // max(rebuild_min_delta, rebuild_fraction * snapshot entries).
    size_t rebuild_min_delta = 4096;
    double rebuild_fraction = 0.25;
    // Drain on the shared thread pool (true) or inline on the writer
    // thread after each seal (false; deterministic, used by fuzz tests).
    bool background_drain = true;
    // Threads used to bulk-load the per-shard snapshots.
    size_t build_threads = 1;
    // Count per-shard lookups and probe depth on the read path (two
    // relaxed fetch_adds per lookup on a shard-private cache line). Off
    // by default so read scaling benchmarks are unaffected; the
    // adaptation layer turns it on to sense skew and read amplification.
    bool collect_shard_stats = false;
  };

  explicit ShardedIndex(const Options& options = Options(),
                        EpochManager* epoch = &EpochManager::Shared())
      : options_(options), epoch_(epoch) {
    LIDX_CHECK(options_.num_shards >= 1);
    LIDX_CHECK(options_.buffer_capacity >= 1);
    Table* table = new Table();
    table->version = next_table_version_.fetch_add(1, std::memory_order_relaxed);
    table->num_shards = options_.num_shards;
    table->boundaries.assign(options_.num_shards, Key{});
    table->shards = std::make_unique<Shard[]>(options_.num_shards);
    for (size_t s = 0; s < options_.num_shards; ++s) {
      table->shards[s].state.store(EmptyState(), std::memory_order_relaxed);
    }
    table_.store(table, std::memory_order_release);
  }

  ~ShardedIndex() {
    WaitForDrains();
    // lidx-lint: allow(epoch-guard): destructor — readers are gone.
    delete table_.load(std::memory_order_relaxed);
    // Retired Tables/States self-contain their payloads (shared_ptr), so
    // they may outlive this index; nudge the collector anyway.
    epoch_->ReclaimSome();
  }

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  // Bulk-loads sorted strictly-increasing keys. Shard boundaries are the
  // quantiles of an evenly spaced key sample (the empirical CDF), so each
  // shard receives ~n/num_shards keys regardless of key-space skew. Not
  // thread-safe; call before sharing the index. Resets the shard count to
  // Options::num_shards and the stat counters to zero.
  void BulkLoad(const std::vector<Key>& keys,
                const std::vector<Value>& values) {
    LIDX_CHECK(keys.size() == values.size());
    WaitForDrains();
    const size_t n = keys.size();
    const size_t shards_n = options_.num_shards;
    std::vector<Key> boundaries(shards_n, n == 0 ? Key{} : keys.front());
    if (n > 0) {
      // Sample the CDF: up to sample_size evenly spaced (key, rank)
      // points, then place boundary s at the sample's s/num_shards
      // quantile. With sorted input the sample quantile converges on the
      // exact rank quantile as the sample grows.
      const size_t sample_n = std::min(options_.sample_size, n);
      for (size_t s = 1; s < shards_n; ++s) {
        const size_t sample_rank = s * sample_n / shards_n;
        boundaries[s] =
            keys[sample_rank * (n - 1) / (sample_n - 1 + (sample_n == 1))];
      }
    }
    NormalizeBoundaries(&boundaries);
    Table* table = BuildTable(keys, values, std::move(boundaries));
    Table* old = table_.exchange(table, std::memory_order_acq_rel);
    delete old;  // BulkLoad is not concurrent with readers by contract.
  }

  // Lock-free point lookup; never blocks on writers, drains or rebalances.
  std::optional<Value> Find(const Key& key) const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    const Shard& shard = table->shards[Route(*table, key)];
    const State* state = shard.state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    size_t depth = 0;
    std::optional<Value> result;
    if (std::optional<std::optional<Value>> hit =
            ProbeBuffersAndDelta(*state, key, &depth)) {
      result = *hit;
    } else if (state->snapshot != nullptr) {
      depth += 2;  // Model traversal plus last-mile search.
      result = state->snapshot->Find(key);
    }
    if (options_.collect_shard_stats) {
      shard.lookups.fetch_add(1, std::memory_order_relaxed);
      shard.probe_depth.fetch_add(depth, std::memory_order_relaxed);
    }
    return result;
  }

  bool Contains(const Key& key) const { return Find(key).has_value(); }

  // Batched lookups routed per shard under a single epoch pin. Keys that
  // fall through every buffer level are resolved against the snapshot via
  // its own LookupBatch (AMAC prefetch interleaving) when it has one.
  // Contract matches the 1-D indexes: out[i] = Value{} for absent keys.
  void FindBatch(const Key* keys, size_t count, Value* out) const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    const size_t num_shards = table->num_shards;
    std::vector<const State*> states(num_shards, nullptr);
    std::vector<std::vector<size_t>> snapshot_pending(num_shards);
    const bool stats = options_.collect_shard_stats;
    for (size_t i = 0; i < count; ++i) {
      const size_t s = Route(*table, keys[i]);
      const Shard& shard = table->shards[s];
      if (states[s] == nullptr) {
        states[s] = shard.state.load(std::memory_order_acquire);
        epoch_->AssertProtected(states[s]);
      }
      const State* state = states[s];
      size_t depth = 0;
      if (std::optional<std::optional<Value>> hit =
              ProbeBuffersAndDelta(*state, keys[i], &depth)) {
        out[i] = hit->has_value() ? **hit : Value{};
      } else if (state->snapshot != nullptr) {
        snapshot_pending[s].push_back(i);
        depth += 2;
      } else {
        out[i] = Value{};
      }
      if (stats) {
        shard.lookups.fetch_add(1, std::memory_order_relaxed);
        shard.probe_depth.fetch_add(depth, std::memory_order_relaxed);
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<size_t>& pending = snapshot_pending[s];
      if (pending.empty()) continue;
      const Index& snapshot = *states[s]->snapshot;
      if constexpr (serving_detail::HasLookupBatch<Index, Key, Value>) {
        std::vector<Key> batch_keys(pending.size());
        std::vector<Value> batch_out(pending.size());
        for (size_t j = 0; j < pending.size(); ++j) {
          batch_keys[j] = keys[pending[j]];
        }
        snapshot.LookupBatch(batch_keys.data(), batch_keys.size(),
                             batch_out.data());
        for (size_t j = 0; j < pending.size(); ++j) {
          out[pending[j]] = batch_out[j];
        }
      } else {
        for (const size_t i : pending) {
          out[i] = snapshot.Find(keys[i]).value_or(Value{});
        }
      }
    }
  }

  void Insert(const Key& key, const Value& value) {
    Upsert(key, value, /*tombstone=*/false);
  }

  // Blind tombstone write plus a pre-read for the return value (the
  // existence answer is racy under concurrent writers, like any
  // check-then-act; the tombstone itself is always correct).
  bool Erase(const Key& key) {
    const bool existed = Find(key).has_value();
    Upsert(key, Value{}, /*tombstone=*/true);
    return existed;
  }

  // Merged scan across every level of every overlapping shard. Bounds are
  // inclusive, matching the 1-D indexes.
  void RangeScan(const Key& lo, const Key& hi,
                 std::vector<std::pair<Key, Value>>* out) const {
    if (hi < lo) return;
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    const size_t first = Route(*table, lo);
    for (size_t s = first; s < table->num_shards; ++s) {
      if (s > first && table->boundaries[s] > hi) break;
      CollectShardRange(*table, s, lo, hi, out);
    }
  }

  // Live entry count (full merge walk; O(n), intended for tests).
  size_t size() const {
    std::vector<std::pair<Key, Value>> all;
    RangeScan(std::numeric_limits<Key>::lowest(),
              std::numeric_limits<Key>::max(), &all);
    return all.size();
  }

  size_t SizeBytes() const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    size_t total = sizeof(*this) + sizeof(Table) +
                   table->boundaries.capacity() * sizeof(Key) +
                   table->num_shards * sizeof(Shard);
    for (size_t s = 0; s < table->num_shards; ++s) {
      const State* state =
          table->shards[s].state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      total += sizeof(State);
      total += state->active->capacity * sizeof(Entry);
      for (const auto& b : state->sealed) total += b->capacity * sizeof(Entry);
      if (state->delta != nullptr) {
        total += state->delta->keys.capacity() * sizeof(Key) +
                 state->delta->values.capacity() * sizeof(Value) +
                 state->delta->tombstones.capacity();
      }
      if (state->snapshot != nullptr) {
        if constexpr (serving_detail::HasSizeBytes<Index>) {
          total += state->snapshot->SizeBytes();
        }
      }
    }
    return total;
  }

  // Blocks until no drain task is queued or running, lending the calling
  // thread to the shared pool meanwhile (so a wait on a small pool cannot
  // deadlock behind its own queued drain). Writers should be quiesced
  // first or drains may keep re-arming.
  void WaitForDrains() const {
    while (pending_drains_.load() != 0) {
      if (!ThreadPool::Shared().TryRunOne()) std::this_thread::yield();
    }
  }

  // Forces every shard's buffered writes down into delta/snapshot (used
  // by tests to reach a deterministic fully-drained state). Retries if a
  // concurrent Rebalance swaps the table mid-flush.
  void FlushAll() {
    for (;;) {
      while (drains_paused_.load()) std::this_thread::yield();
      EpochManager::Guard guard = epoch_->Pin();
      Table* table = table_.load(std::memory_order_acquire);
      epoch_->AssertProtected(table);
      bool retry = false;
      for (size_t s = 0; s < table->num_shards; ++s) {
        Shard& shard = table->shards[s];
        {
          MutexLock lock(shard.write_mu);
          if (table_.load(std::memory_order_acquire) != table) {
            retry = true;
            break;
          }
          State* state = shard.state.load(std::memory_order_relaxed);
          if (state->active->size.load(std::memory_order_relaxed) > 0) {
            SealLocked(&shard, state);
          }
        }
        TryScheduleDrain(table, s, /*force_inline=*/true);
      }
      WaitForDrains();
      if (!retry && !drains_paused_.load() &&
          table_.load(std::memory_order_acquire) == table) {
        return;
      }
    }
  }

  // Rebuilds the entire shard table online: collects every live entry
  // under the shard writer locks, recomputes boundaries as
  // traffic-weighted quantiles of the observed per-shard lookup counts
  // (pure data quantiles when collect_shard_stats is off or counters are
  // flat), bulk-loads fresh per-shard snapshots and atomically publishes
  // the new table. `new_num_shards == 0` keeps the current shard count.
  //
  // Readers are never blocked: in-flight readers finish against the old
  // table under their epoch pins, and the old table is retired, not
  // freed. Writers block on the shard mutexes for the duration and then
  // retry against the new table. Returns false if another rebalance was
  // already in flight. Safe to call from a pool worker (the drain wait
  // participates in the pool).
  bool Rebalance(size_t new_num_shards = 0) {
    if (rebalance_inflight_.exchange(true, std::memory_order_acq_rel)) {
      return false;
    }
    // Stop new drains from registering, then wait out (or run) the ones
    // already registered — after this, no drain task holds a pointer into
    // the live table. See the seq_cst handshake note in the class comment.
    drains_paused_.store(true);
    WaitForDrains();
    {
      EpochManager::Guard guard = epoch_->Pin();
      Table* table = table_.load(std::memory_order_acquire);
      epoch_->AssertProtected(table);
      const size_t old_n = table->num_shards;
      const size_t new_n = new_num_shards == 0 ? old_n : new_num_shards;
      LockAllShards(table);
      // With every writer lock held the shard contents are frozen.
      // Collect per-shard live entries (shards are key-ordered, so their
      // concatenation is globally sorted) plus per-shard traffic weights.
      std::vector<Key> keys;
      std::vector<Value> values;
      std::vector<size_t> shard_ends(old_n, 0);
      std::vector<uint64_t> weights(old_n, 0);
      std::vector<std::pair<Key, Value>> pairs;
      for (size_t s = 0; s < old_n; ++s) {
        pairs.clear();
        CollectShardRange(*table, s, std::numeric_limits<Key>::lowest(),
                          std::numeric_limits<Key>::max(), &pairs);
        for (const auto& [k, v] : pairs) {
          keys.push_back(k);
          values.push_back(v);
        }
        shard_ends[s] = keys.size();
        // +1 smoothing: with stats disabled every shard weighs the same
        // and the boundaries fall back to pure data quantiles.
        weights[s] = table->shards[s].lookups.load(std::memory_order_relaxed) + 1;
      }
      std::vector<Key> boundaries =
          WeightedBoundaries(keys, shard_ends, weights, new_n);
      Table* next = BuildTable(keys, values, std::move(boundaries));
      table_.store(next, std::memory_order_release);
      UnlockAllShards(table);
      // Unlink-then-retire: blocked writers still hold references to the
      // old table's mutexes, so it must stay alive until they (and any
      // pinned readers) move on — exactly what epoch retirement gives us.
      epoch_->RetireDelete(table);
      rebalance_count_.fetch_add(1, std::memory_order_relaxed);
    }
    drains_paused_.store(false);
    rebalance_inflight_.store(false, std::memory_order_release);
    return true;
  }

  // Forces shard `s` of the current table through a drain that rebuilds
  // its snapshot even when the delta is below the rebuild threshold — the
  // "retrain this shard's model now" adaptation action. No-op if `s` is
  // out of range or a rebalance swallows the request (the rebalance
  // rebuilds every snapshot anyway).
  void RequestShardRebuild(size_t s) {
    EpochManager::Guard guard = epoch_->Pin();
    Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    if (s >= table->num_shards) return;
    table->shards[s].force_rebuild.store(true, std::memory_order_release);
    TryScheduleDrain(table, s, /*force_inline=*/false);
  }

  struct Stats {
    uint64_t seals;
    uint64_t drains;
    uint64_t rebuilds;
    uint64_t rebalances;
  };
  Stats GetStats() const {
    return Stats{seal_count_.load(std::memory_order_relaxed),
                 drain_count_.load(std::memory_order_relaxed),
                 rebuild_count_.load(std::memory_order_relaxed),
                 rebalance_count_.load(std::memory_order_relaxed)};
  }

  // Per-shard sensing snapshot for the adaptation layer. Lookup/probe
  // counters are cumulative for the lifetime of the current table (they
  // restart at zero after a Rebalance — the table version tells consumers
  // when that happened).
  struct ShardStat {
    uint64_t lookups = 0;      // Reads routed to this shard.
    uint64_t probe_depth = 0;  // Total structures probed across those reads.
    size_t buffered = 0;       // Entries in active + sealed buffers.
    size_t delta = 0;          // Entries in the sorted delta.
    size_t snapshot = 0;       // Entries in the snapshot index.
  };
  struct ShardStatsSnapshot {
    uint64_t table_version = 0;
    std::vector<ShardStat> shards;
  };
  ShardStatsSnapshot TakeShardStats() const {
    ShardStatsSnapshot out;
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    out.table_version = table->version;
    out.shards.resize(table->num_shards);
    for (size_t s = 0; s < table->num_shards; ++s) {
      const Shard& shard = table->shards[s];
      ShardStat& stat = out.shards[s];
      stat.lookups = shard.lookups.load(std::memory_order_relaxed);
      stat.probe_depth = shard.probe_depth.load(std::memory_order_relaxed);
      const State* state = shard.state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      stat.buffered = state->active->size.load(std::memory_order_acquire);
      for (const auto& b : state->sealed) {
        stat.buffered += b->size.load(std::memory_order_acquire);
      }
      if (state->delta != nullptr) stat.delta = state->delta->keys.size();
      stat.snapshot = state->snapshot_size;
    }
    return out;
  }

  size_t num_shards() const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    return table->num_shards;
  }

  uint64_t table_version() const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    return table->version;
  }

  // Structural invariants over every published shard state. Lock-free and
  // safe to run concurrently with readers, writers, drains and
  // rebalances. Aborts on violation.
  void CheckInvariants() const {
    EpochManager::Guard guard = epoch_->Pin();
    const Table* table = table_.load(std::memory_order_acquire);
    epoch_->AssertProtected(table);
    const size_t num_shards = table->num_shards;
    LIDX_INVARIANT(table->boundaries.size() == num_shards,
                   "sharded: boundary per shard");
    invariants::CheckSorted(table->boundaries,
                            "sharded: boundaries non-decreasing");
    for (size_t s = 0; s < num_shards; ++s) {
      const State* state =
          table->shards[s].state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      const size_t active_n =
          state->active->size.load(std::memory_order_acquire);
      LIDX_INVARIANT(active_n <= state->active->capacity,
                     "sharded: active buffer within capacity");
      const auto check_buffer = [&](const Buffer& b) {
        const size_t n = b.size.load(std::memory_order_acquire);
        LIDX_INVARIANT(n <= b.capacity, "sharded: buffer within capacity");
        if (num_shards > 1) {
          for (size_t i = 0; i < n; ++i) {
            LIDX_INVARIANT(Route(*table, b.slots[i].key) == s,
                           "sharded: buffered key routes to its shard");
          }
        }
      };
      check_buffer(*state->active);
      for (const auto& b : state->sealed) check_buffer(*b);
      if (state->delta != nullptr) {
        const Delta& d = *state->delta;
        LIDX_INVARIANT(d.keys.size() == d.values.size() &&
                           d.keys.size() == d.tombstones.size(),
                       "sharded: delta arrays parallel");
        invariants::CheckStrictlySorted(d.keys, "sharded: delta sorted unique");
        if (num_shards > 1) {
          for (const Key& k : d.keys) {
            LIDX_INVARIANT(Route(*table, k) == s,
                           "sharded: delta key routes to its shard");
          }
        }
      }
      if (state->snapshot != nullptr) {
        if constexpr (HasCheckInvariants<Index>) {
          state->snapshot->CheckInvariants();
        }
      }
    }
  }

 private:
  struct Entry {
    Key key;
    Value value;
    bool tombstone;
  };

  // Append-only write buffer. Entries [0, size) are immutable and
  // published by the release store of `size`; see the class comment.
  struct Buffer {
    explicit Buffer(size_t cap)
        : slots(std::make_unique<Entry[]>(cap)), capacity(cap) {}
    std::unique_ptr<Entry[]> slots;
    size_t capacity;
    std::atomic<size_t> size{0};
  };

  // Sorted, unique, tombstone-carrying delta level (the drained form of
  // sealed buffers). Immutable after construction.
  struct Delta {
    std::vector<Key> keys;
    std::vector<Value> values;
    std::vector<uint8_t> tombstones;
  };

  // One immutable version of a shard. Never mutated after its release
  // publication (the active Buffer's append tail is the one exception,
  // governed by Buffer::size).
  struct State {
    std::shared_ptr<const Index> snapshot;
    size_t snapshot_size = 0;
    std::shared_ptr<const Delta> delta;
    std::vector<std::shared_ptr<Buffer>> sealed;  // Oldest -> newest.
    std::shared_ptr<Buffer> active;
  };

  struct alignas(64) Shard {
    // Readers must hold an EpochManager::Guard to dereference the loaded
    // pointer; writers load/publish it under write_mu.
    std::atomic<State*> state{nullptr};  // lidx: epoch-protected
    Mutex write_mu;
    std::atomic<bool> drain_scheduled{false};
    std::atomic<bool> force_rebuild{false};
    // Sensing counters (Options::collect_shard_stats). On their own cache
    // line so reader stat bumps never invalidate the line other readers
    // use to load `state`.
    alignas(64) mutable std::atomic<uint64_t> lookups{0};
    mutable std::atomic<uint64_t> probe_depth{0};

    ~Shard() {
      // lidx-lint: allow(epoch-guard): table/shard teardown runs at
      // epoch quiescence (or single-threaded) — readers are gone.
      delete state.load(std::memory_order_relaxed);
    }
  };

  // The whole partitioning — boundaries plus the shard array — as one
  // immutable, epoch-protected unit, so Rebalance can swap it atomically.
  struct Table {
    uint64_t version = 0;
    size_t num_shards = 0;
    std::vector<Key> boundaries;  // boundaries[s] = first key of shard s.
    std::unique_ptr<Shard[]> shards;
  };

  // Payload carried through lsm/merge.h newest-wins merges.
  struct Pending {
    Value value;
    uint8_t tombstone;
  };
  using Run = std::vector<std::pair<Key, Pending>>;

  State* EmptyState() {
    State* state = new State();
    state->active = std::make_shared<Buffer>(options_.buffer_capacity);
    return state;
  }

  // Duplicate boundaries (collapsed quantiles on tiny datasets) mark
  // empty shards; keep them non-decreasing so Route can normalize.
  static void NormalizeBoundaries(std::vector<Key>* boundaries) {
    for (size_t s = 1; s < boundaries->size(); ++s) {
      if ((*boundaries)[s] < (*boundaries)[s - 1]) {
        (*boundaries)[s] = (*boundaries)[s - 1];
      }
    }
  }

  // Routing within one immutable table: lock-free. The first shard of a
  // duplicate-boundary run owns the whole range, so normalize to it —
  // otherwise keys above the duplicated boundary would route to a shard
  // that never received the snapshot data.
  static size_t Route(const Table& table, const Key& key) {
    const std::vector<Key>& boundaries = table.boundaries;
    const size_t lb =
        BinarySearchLowerBound(boundaries, key, 0, boundaries.size());
    size_t s;
    if (lb < boundaries.size() && boundaries[lb] == key) {
      s = lb;
    } else {
      s = lb == 0 ? 0 : lb - 1;
    }
    while (s > 0 && boundaries[s] == boundaries[s - 1]) --s;
    return s;
  }

  // Builds a fully-loaded table from globally sorted (keys, values) and
  // normalized boundaries. The result is private to the caller until it
  // publishes the pointer.
  Table* BuildTable(const std::vector<Key>& keys,
                    const std::vector<Value>& values,
                    std::vector<Key> boundaries) {
    Table* table = new Table();
    table->version = next_table_version_.fetch_add(1, std::memory_order_relaxed);
    table->num_shards = boundaries.size();
    table->boundaries = std::move(boundaries);
    table->shards = std::make_unique<Shard[]>(table->num_shards);
    const size_t n = keys.size();
    std::vector<size_t> starts(table->num_shards + 1, 0);
    for (size_t s = 1; s < table->num_shards; ++s) {
      starts[s] = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), table->boundaries[s]) -
          keys.begin());
    }
    starts[table->num_shards] = n;
    ParallelForIndex(options_.build_threads, table->num_shards, [&](size_t s) {
      const size_t begin = starts[s];
      const size_t end = starts[s + 1];
      State* state = new State();
      state->active = std::make_shared<Buffer>(options_.buffer_capacity);
      if (begin < end) {
        auto index = std::make_shared<Index>();
        serving_detail::BulkLoadInto<Index, Key, Value>(
            index.get(),
            std::vector<Key>(keys.begin() + begin, keys.begin() + end),
            std::vector<Value>(values.begin() + begin, values.begin() + end));
        state->snapshot = std::move(index);
        state->snapshot_size = end - begin;
      }
      table->shards[s].state.store(state, std::memory_order_relaxed);
    });
    return table;
  }

  // Boundaries for `new_n` shards over globally sorted `keys`, weighting
  // each source shard's key range by its observed lookup traffic so hot
  // ranges get narrower shards. `shard_ends[s]` is the exclusive end of
  // shard s's slice of `keys`; flat weights reduce to data quantiles.
  static std::vector<Key> WeightedBoundaries(
      const std::vector<Key>& keys, const std::vector<size_t>& shard_ends,
      const std::vector<uint64_t>& weights, size_t new_n) {
    std::vector<Key> boundaries(new_n, keys.empty() ? Key{} : keys.front());
    if (keys.empty() || new_n <= 1) return boundaries;
    // Per-key weight = the source shard's traffic spread evenly over its
    // keys; empty source shards contribute nothing.
    std::vector<double> per_key(keys.size(), 0.0);
    double total = 0.0;
    size_t begin = 0;
    for (size_t s = 0; s < shard_ends.size(); ++s) {
      const size_t end = shard_ends[s];
      if (end > begin) {
        const double w = static_cast<double>(weights[s]) /
                         static_cast<double>(end - begin);
        for (size_t i = begin; i < end; ++i) per_key[i] = w;
        total += static_cast<double>(weights[s]);
      }
      begin = end;
    }
    // Boundary j starts where cumulative traffic crosses j/new_n of the
    // total. A single scorching key can absorb several quantiles; the
    // resulting duplicate boundaries collapse into empty shards, which
    // Route handles.
    double acc = 0.0;
    size_t j = 1;
    for (size_t i = 0; i + 1 < keys.size() && j < new_n; ++i) {
      acc += per_key[i];
      while (j < new_n &&
             acc >= total * static_cast<double>(j) / static_cast<double>(new_n)) {
        boundaries[j++] = keys[i + 1];
      }
    }
    NormalizeBoundaries(&boundaries);
    return boundaries;
  }

  static void LockAllShards(Table* table) LIDX_NO_THREAD_SAFETY_ANALYSIS {
    // Runtime-sized lock set; always acquired in shard order and only by
    // the single-flight Rebalance, so there is no ordering cycle.
    // Allowlisted in docs/STATIC_ANALYSIS.md.
    for (size_t s = 0; s < table->num_shards; ++s) {
      table->shards[s].write_mu.Lock();
    }
  }

  static void UnlockAllShards(Table* table) LIDX_NO_THREAD_SAFETY_ANALYSIS {
    for (size_t s = 0; s < table->num_shards; ++s) {
      table->shards[s].write_mu.Unlock();
    }
  }

  // Newest matching entry in a buffer, or nullptr. Backwards scan so a
  // later upsert of the same key wins.
  static const Entry* ProbeBuffer(const Buffer& buffer, const Key& key) {
    const size_t n = buffer.size.load(std::memory_order_acquire);
    for (size_t i = n; i-- > 0;) {
      if (buffer.slots[i].key == key) return &buffer.slots[i];
    }
    return nullptr;
  }

  // Probes buffers + delta, counting probed structures into *depth (the
  // read-amplification signal). Outer nullopt: not present at these
  // levels (fall through to snapshot). Inner nullopt: tombstoned
  // (definitely absent).
  std::optional<std::optional<Value>> ProbeBuffersAndDelta(
      const State& state, const Key& key, size_t* depth) const {
    ++*depth;
    if (const Entry* e = ProbeBuffer(*state.active, key)) {
      return std::optional<std::optional<Value>>(
          e->tombstone ? std::nullopt : std::optional<Value>(e->value));
    }
    for (auto it = state.sealed.rbegin(); it != state.sealed.rend(); ++it) {
      ++*depth;
      if (const Entry* e = ProbeBuffer(**it, key)) {
        return std::optional<std::optional<Value>>(
            e->tombstone ? std::nullopt : std::optional<Value>(e->value));
      }
    }
    if (state.delta != nullptr) {
      ++*depth;
      const Delta& d = *state.delta;
      const size_t pos = static_cast<size_t>(
          std::lower_bound(d.keys.begin(), d.keys.end(), key) -
          d.keys.begin());
      if (pos < d.keys.size() && d.keys[pos] == key) {
        return std::optional<std::optional<Value>>(
            d.tombstones[pos] ? std::nullopt
                              : std::optional<Value>(d.values[pos]));
      }
    }
    return std::nullopt;
  }

  void Upsert(const Key& key, const Value& value, bool tombstone) {
    for (;;) {
      EpochManager::Guard guard = epoch_->Pin();
      Table* table = table_.load(std::memory_order_acquire);
      epoch_->AssertProtected(table);
      const size_t s = Route(*table, key);
      Shard& shard = table->shards[s];
      bool sealed = false;
      bool done = false;
      {
        MutexLock lock(shard.write_mu);
        // A Rebalance may have swapped the table while we waited for the
        // lock; the pin keeps `table` alive, but its shards are no longer
        // the live ones. Re-check and retry against the new table.
        if (table_.load(std::memory_order_acquire) == table) {
          // Writers are serialized by write_mu, so a relaxed load sees
          // the latest state (any prior publisher held this mutex).
          State* state = shard.state.load(std::memory_order_relaxed);
          Buffer* buffer = state->active.get();
          size_t n = buffer->size.load(std::memory_order_relaxed);
          if (n == buffer->capacity) {
            SealLocked(&shard, state);
            state = shard.state.load(std::memory_order_relaxed);
            buffer = state->active.get();
            n = 0;
            sealed = true;
          }
          buffer->slots[n] = Entry{key, value, tombstone};
          // Release-publish the appended entry (paired with the acquire
          // load in ProbeBuffer).
          buffer->size.store(n + 1, std::memory_order_release);
          done = true;
        }
      }
      if (!done) continue;
      if (sealed) TryScheduleDrain(table, s, /*force_inline=*/false);
      return;
    }
  }

  // Moves the full active buffer onto the sealed list. O(1): no sort, no
  // copy — this is the entire slow path a writer can hit, which is what
  // keeps insert p999 within a small factor of p50.
  void SealLocked(Shard* shard, State* state)
      LIDX_REQUIRES(shard->write_mu) {
    State* next = new State(*state);
    next->sealed.push_back(state->active);
    next->active = std::make_shared<Buffer>(options_.buffer_capacity);
    shard->state.store(next, std::memory_order_release);
    // Unlink-then-retire: `state` is unreachable to new readers; epoch
    // reclamation frees it once in-flight readers unpin.
    epoch_->RetireDelete(state);
    seal_count_.fetch_add(1, std::memory_order_relaxed);
  }

  bool NeedsDrain(const Shard& shard) const {
    EpochManager::Guard guard = epoch_->Pin();
    const State* state = shard.state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    return !state->sealed.empty();
  }

  bool WantsDrain(const Shard& shard) const {
    return shard.force_rebuild.load(std::memory_order_acquire) ||
           NeedsDrain(shard);
  }

  // REQUIRES: the caller holds an epoch Guard protecting `table` (every
  // call site pins before loading the table it passes here).
  void TryScheduleDrain(Table* table, size_t s, bool force_inline) {
    epoch_->AssertPinned();
    Shard& shard = table->shards[s];
    if (!WantsDrain(shard)) return;
    if (drains_paused_.load()) return;  // Rebalance folds the buffers in.
    if (shard.drain_scheduled.exchange(true, std::memory_order_acq_rel)) {
      return;  // A drain is already queued or running; it will re-check.
    }
    // Register, then re-check (seq_cst, see class comment): if a
    // rebalance started after the pause check above, either we observe
    // its pause/swap here and back off — its collect subsumes the drain —
    // or it observes our registration and waits for this drain. Without
    // this, a drain task could outlive the table it points into.
    pending_drains_.fetch_add(1);
    if (drains_paused_.load() ||
        table_.load(std::memory_order_acquire) != table) {
      shard.drain_scheduled.store(false, std::memory_order_release);
      pending_drains_.fetch_sub(1);
      return;
    }
    if (options_.background_drain && !force_inline) {
      ThreadPool::Shared().Submit(
          [this, shard_ptr = &shard] { DrainShard(shard_ptr); });
    } else {
      DrainShard(&shard);
    }
  }

  // Runs on a pool worker (or inline). Merges sealed buffers into the
  // delta and rebuilds the snapshot when the delta outgrows it (or a
  // rebuild was forced). At most one drain per shard runs at a time
  // (drain_scheduled), which is what makes the sealed-prefix removal in
  // the publish step sound. The shard (and its table) stay alive for the
  // whole call: pending_drains_ was incremented before scheduling, and
  // Rebalance waits for it to hit zero before retiring the table.
  void DrainShard(Shard* shard) {
    for (;;) {
      DrainOnce(shard);
      shard->drain_scheduled.store(false, std::memory_order_release);
      // A rebalance is waiting to collect; leave the rest to it.
      if (drains_paused_.load()) break;
      // Re-arm if writers sealed more buffers (or a rebuild was forced)
      // while we merged. The exchange closes the race with a concurrent
      // TryScheduleDrain.
      if (!WantsDrain(*shard)) break;
      if (shard->drain_scheduled.exchange(true, std::memory_order_acq_rel)) {
        break;  // Someone else claimed the next round.
      }
    }
    epoch_->ReclaimSome();
    pending_drains_.fetch_sub(1);
  }

  void DrainOnce(Shard* shard) {
    const bool force =
        shard->force_rebuild.exchange(false, std::memory_order_acq_rel);
    // Capture immutable inputs under an epoch pin; the shared_ptr copies
    // keep them alive after unpinning, so the heavy merge below runs
    // without blocking writers or readers.
    std::shared_ptr<const Index> snapshot;
    size_t snapshot_size = 0;
    std::shared_ptr<const Delta> delta;
    std::vector<std::shared_ptr<Buffer>> sealed;
    {
      EpochManager::Guard guard = epoch_->Pin();
      const State* state = shard->state.load(std::memory_order_acquire);
      epoch_->AssertProtected(state);
      snapshot = state->snapshot;
      snapshot_size = state->snapshot_size;
      delta = state->delta;
      sealed = state->sealed;
    }
    const size_t merged_count = sealed.size();
    if (merged_count == 0 && !force) return;
    if (merged_count == 0 && delta == nullptr && snapshot == nullptr) {
      return;  // Forced rebuild of an empty shard: nothing to do.
    }

    // Newest-first runs for the shared LSM merge: each sealed buffer
    // becomes a sorted run (newest entry per key wins within a buffer),
    // the existing delta is the oldest run.
    std::vector<Run> runs;
    runs.reserve(merged_count + 1);
    for (auto it = sealed.rbegin(); it != sealed.rend(); ++it) {
      runs.push_back(BufferToRun(**it));
    }
    if (delta != nullptr) runs.push_back(DeltaToRun(*delta));
    Run merged = MergeStreams(std::move(runs), /*threads=*/1);

    std::shared_ptr<const Index> new_snapshot = snapshot;
    size_t new_snapshot_size = snapshot_size;
    std::shared_ptr<const Delta> new_delta;
    const size_t rebuild_threshold = std::max(
        options_.rebuild_min_delta,
        static_cast<size_t>(options_.rebuild_fraction *
                            static_cast<double>(snapshot_size)));
    if (force || merged.size() >= rebuild_threshold) {
      RebuildSnapshot(snapshot.get(), merged, &new_snapshot,
                      &new_snapshot_size);
      rebuild_count_.fetch_add(1, std::memory_order_relaxed);
    } else if (!merged.empty()) {
      auto d = std::make_shared<Delta>();
      d->keys.reserve(merged.size());
      d->values.reserve(merged.size());
      d->tombstones.reserve(merged.size());
      for (const auto& [k, p] : merged) {
        d->keys.push_back(k);
        d->values.push_back(p.value);
        d->tombstones.push_back(p.tombstone);
      }
      new_delta = std::move(d);
    }

    // Publish: splice the merged result in under the writer lock, keeping
    // whatever sealed buffers and active appends arrived meanwhile.
    {
      MutexLock lock(shard->write_mu);
      State* current = shard->state.load(std::memory_order_relaxed);
      State* next = new State();
      next->snapshot = std::move(new_snapshot);
      next->snapshot_size = new_snapshot_size;
      next->delta = std::move(new_delta);
      next->sealed.assign(current->sealed.begin() +
                              static_cast<ptrdiff_t>(merged_count),
                          current->sealed.end());
      next->active = current->active;
      shard->state.store(next, std::memory_order_release);
      epoch_->RetireDelete(current);
    }
    drain_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Sorted newest-wins run from an append-ordered buffer.
  static Run BufferToRun(const Buffer& buffer) {
    const size_t n = buffer.size.load(std::memory_order_acquire);
    Run run;
    run.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Entry& e = buffer.slots[i];
      run.emplace_back(e.key, Pending{e.value, e.tombstone ? uint8_t{1}
                                                           : uint8_t{0}});
    }
    std::stable_sort(run.begin(), run.end(), [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    // Keep the last (newest) entry of each equal-key group.
    Run deduped;
    deduped.reserve(run.size());
    for (size_t i = 0; i < run.size(); ++i) {
      if (i + 1 == run.size() || run[i + 1].first != run[i].first) {
        deduped.push_back(run[i]);
      }
    }
    return deduped;
  }

  static Run DeltaToRun(const Delta& delta) {
    Run run;
    run.reserve(delta.keys.size());
    for (size_t i = 0; i < delta.keys.size(); ++i) {
      run.emplace_back(delta.keys[i],
                       Pending{delta.values[i], delta.tombstones[i]});
    }
    return run;
  }

  // Merges the delta into a dump of the snapshot and bulk-loads a fresh
  // index. Tombstones die here: the shard owns its whole key range, so a
  // tombstone surviving to the bottom level deletes nothing below.
  void RebuildSnapshot(const Index* snapshot, const Run& merged,
                       std::shared_ptr<const Index>* out_snapshot,
                       size_t* out_size) {
    std::vector<std::pair<Key, Value>> base;
    if (snapshot != nullptr) {
      snapshot->RangeScan(std::numeric_limits<Key>::lowest(),
                          std::numeric_limits<Key>::max(), &base);
    }
    std::vector<Key> keys;
    std::vector<Value> values;
    keys.reserve(base.size() + merged.size());
    values.reserve(base.size() + merged.size());
    size_t di = 0;
    size_t bi = 0;
    while (di < merged.size() || bi < base.size()) {
      const bool take_delta =
          di < merged.size() &&
          (bi >= base.size() || merged[di].first <= base[bi].first);
      if (take_delta) {
        if (bi < base.size() && base[bi].first == merged[di].first) ++bi;
        if (!merged[di].second.tombstone) {
          keys.push_back(merged[di].first);
          values.push_back(merged[di].second.value);
        }
        ++di;
      } else {
        keys.push_back(base[bi].first);
        values.push_back(base[bi].second);
        ++bi;
      }
    }
    if (keys.empty()) {
      out_snapshot->reset();
      *out_size = 0;
      return;
    }
    auto index = std::make_shared<Index>();
    *out_size = keys.size();
    serving_detail::BulkLoadInto<Index, Key, Value>(
        index.get(), std::move(keys), std::move(values));
    *out_snapshot = std::move(index);
  }

  void CollectShardRange(const Table& table, size_t s, const Key& lo,
                         const Key& hi,
                         std::vector<std::pair<Key, Value>>* out) const {
    EpochManager::Guard guard = epoch_->Pin();
    const State* state = table.shards[s].state.load(std::memory_order_acquire);
    epoch_->AssertProtected(state);
    // Newest-wins merge via try_emplace: levels are visited newest first,
    // and the first emplace of a key sticks. nullopt marks a tombstone.
    std::map<Key, std::optional<Value>> window;
    const auto add_buffer = [&](const Buffer& b) {
      const size_t n = b.size.load(std::memory_order_acquire);
      for (size_t i = n; i-- > 0;) {
        const Entry& e = b.slots[i];
        if (e.key < lo || hi < e.key) continue;
        window.try_emplace(e.key, e.tombstone
                                      ? std::optional<Value>()
                                      : std::optional<Value>(e.value));
      }
    };
    add_buffer(*state->active);
    for (auto it = state->sealed.rbegin(); it != state->sealed.rend(); ++it) {
      add_buffer(**it);
    }
    if (state->delta != nullptr) {
      const Delta& d = *state->delta;
      size_t pos = static_cast<size_t>(
          std::lower_bound(d.keys.begin(), d.keys.end(), lo) -
          d.keys.begin());
      for (; pos < d.keys.size() && d.keys[pos] <= hi; ++pos) {
        window.try_emplace(d.keys[pos],
                           d.tombstones[pos]
                               ? std::optional<Value>()
                               : std::optional<Value>(d.values[pos]));
      }
    }
    if (state->snapshot != nullptr) {
      std::vector<std::pair<Key, Value>> from_snapshot;
      state->snapshot->RangeScan(lo, hi, &from_snapshot);
      for (const auto& [k, v] : from_snapshot) {
        window.try_emplace(k, std::optional<Value>(v));
      }
    }
    for (const auto& [k, v] : window) {
      if (v.has_value()) out->emplace_back(k, *v);
    }
  }

  Options options_;
  EpochManager* epoch_;
  // The live partitioning. Swapped by BulkLoad (exclusive by contract)
  // and Rebalance (epoch-retired swap, single-flight).
  std::atomic<Table*> table_{nullptr};  // lidx: epoch-protected
  std::atomic<uint64_t> next_table_version_{1};
  // Drain/rebalance handshake; seq_cst (defaulted orders), see the class
  // comment.
  mutable std::atomic<size_t> pending_drains_{0};
  std::atomic<bool> drains_paused_{false};
  std::atomic<bool> rebalance_inflight_{false};
  std::atomic<uint64_t> seal_count_{0};
  std::atomic<uint64_t> drain_count_{0};
  std::atomic<uint64_t> rebuild_count_{0};
  std::atomic<uint64_t> rebalance_count_{0};
};

}  // namespace lidx

#endif  // LIDX_SERVING_SHARDED_INDEX_H_
