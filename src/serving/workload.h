#ifndef LIDX_SERVING_WORKLOAD_H_
#define LIDX_SERVING_WORKLOAD_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "datasets/workload.h"

namespace lidx::serving {

// Multi-threaded YCSB-style workload driver (methodology of *Updatable
// Learned Indexes Meet Disk-Resident DBMS* and *Are Updatable Learned
// Indexes Ready?*, PAPERS.md): the standard A-F mixes, Zipfian or uniform
// key choice, per-operation latency tails. Shared by bench_e13 and
// bench_e21 so their numbers are directly comparable.
//
// YCSB core mixes:
//   A  update-heavy   50% read / 50% update
//   B  read-mostly    95% read /  5% update
//   C  read-only     100% read
//   D  read-latest    95% read /  5% insert
//   E  short-scans    95% scan /  5% insert
//   F  read-modify-w  50% read / 50% read-modify-write
enum class YcsbMix : uint8_t { kA, kB, kC, kD, kE, kF };

inline const char* YcsbMixName(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA: return "A";
    case YcsbMix::kB: return "B";
    case YcsbMix::kC: return "C";
    case YcsbMix::kD: return "D";
    case YcsbMix::kE: return "E";
    case YcsbMix::kF: return "F";
  }
  return "?";
}

// Maps a YCSB mix onto the repo's MixedWorkloadSpec. Updates are modelled
// as upserts of existing keys; mix F additionally performs the read half
// of each read-modify-write in the driver (see RunYcsb).
inline MixedWorkloadSpec YcsbSpec(YcsbMix mix, double zipf_theta,
                                  uint32_t max_scan_length) {
  MixedWorkloadSpec spec;
  spec.read_fraction = 0.0;
  spec.insert_fraction = 0.0;
  spec.update_fraction = 0.0;
  spec.scan_fraction = 0.0;
  spec.erase_fraction = 0.0;
  spec.zipf_theta = zipf_theta;
  spec.max_scan_length = max_scan_length;
  switch (mix) {
    case YcsbMix::kA:
      spec.read_fraction = 0.5;
      spec.update_fraction = 0.5;
      break;
    case YcsbMix::kB:
      spec.read_fraction = 0.95;
      spec.update_fraction = 0.05;
      break;
    case YcsbMix::kC:
      spec.read_fraction = 1.0;
      break;
    case YcsbMix::kD:
      spec.read_fraction = 0.95;
      spec.insert_fraction = 0.05;
      break;
    case YcsbMix::kE:
      spec.scan_fraction = 0.95;
      spec.insert_fraction = 0.05;
      break;
    case YcsbMix::kF:
      spec.read_fraction = 0.5;
      spec.update_fraction = 0.5;  // Driver turns these into RMW.
      break;
  }
  return spec;
}

struct WorkloadOptions {
  YcsbMix mix = YcsbMix::kC;
  // 0 = uniform key choice over loaded keys; YCSB's default skew is 0.99.
  double zipf_theta = 0.0;
  uint32_t max_scan_length = 100;
  size_t n_threads = 1;
  size_t ops_per_thread = 100000;
  uint64_t seed = 42;
  // Per-operation latency capture costs two clock reads per op (~40ns);
  // disable for pure-throughput runs.
  bool record_latencies = true;
};

struct LatencyStats {
  size_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

struct WorkloadResult {
  double seconds = 0.0;
  size_t total_ops = 0;
  double mops = 0.0;  // Aggregate throughput across all threads.
  LatencyStats read;
  LatencyStats insert;  // kInsert and kUpdate both land here (upserts).
  LatencyStats scan;
  LatencyStats erase;
  uint64_t found = 0;  // Successful point reads (sanity signal).
};

namespace workload_detail {

inline LatencyStats Summarize(std::vector<double>* ns) {
  LatencyStats stats;
  stats.count = ns->size();
  if (ns->empty()) return stats;
  double sum = 0.0;
  double max = 0.0;
  for (const double v : *ns) {
    sum += v;
    max = std::max(max, v);
  }
  stats.mean_ns = sum / static_cast<double>(ns->size());
  stats.max_ns = max;
  const auto pct = [&](double p) {
    const size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(ns->size() - 1) + 0.5);
    std::nth_element(ns->begin(), ns->begin() + rank, ns->end());
    return (*ns)[rank];
  };
  stats.p50_ns = pct(50.0);
  stats.p99_ns = pct(99.0);
  stats.p999_ns = pct(99.9);
  return stats;
}

template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace workload_detail

// Runs one (mix, thread-count) configuration against `index`, which must
// provide Find/Insert/Erase/RangeScan (ShardedIndex, ConcurrentLearnedIndex,
// GlobalLockIndex<...> all qualify). Each thread executes a pre-generated
// operation stream — generation is outside the timed region — and inserts
// consume a disjoint slice of `insert_pool` per thread, so no two threads
// ever write the same fresh key. `existing` are the loaded keys (used for
// read/update/erase/scan key choice and to size scan ranges).
template <typename Index>
WorkloadResult RunYcsb(Index* index, const std::vector<uint64_t>& existing,
                       const std::vector<uint64_t>& insert_pool,
                       const WorkloadOptions& options) {
  LIDX_CHECK(options.n_threads >= 1);
  const MixedWorkloadSpec spec =
      YcsbSpec(options.mix, options.zipf_theta, options.max_scan_length);
  const bool rmw = options.mix == YcsbMix::kF;

  // Pre-generate per-thread operation streams with disjoint insert pools.
  const size_t n_threads = options.n_threads;
  std::vector<std::vector<Operation>> streams(n_threads);
  {
    const size_t pool_chunk = insert_pool.size() / std::max<size_t>(1, n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      std::vector<uint64_t> pool_slice(
          insert_pool.begin() + t * pool_chunk,
          insert_pool.begin() + (t + 1) * pool_chunk);
      streams[t] = GenerateMixedWorkload(spec, options.ops_per_thread, existing,
                                         pool_slice,
                                         options.seed + 7919 * (t + 1));
    }
  }

  // Scan length is specified in records; convert to a key range using the
  // average key gap of the loaded data.
  uint64_t avg_gap = 1;
  if (existing.size() >= 2) {
    avg_gap = std::max<uint64_t>(
        1, (existing.back() - existing.front()) / (existing.size() - 1));
  }

  struct ThreadLog {
    std::vector<double> read_ns;
    std::vector<double> insert_ns;
    std::vector<double> scan_ns;
    std::vector<double> erase_ns;
    uint64_t found = 0;
  };
  std::vector<ThreadLog> logs(n_threads);

  std::atomic<bool> start{false};
  auto worker = [&](size_t t) {
    const std::vector<Operation>& ops = streams[t];
    ThreadLog& log = logs[t];
    if (options.record_latencies) {
      log.read_ns.reserve(ops.size());
      log.insert_ns.reserve(ops.size() / 2 + 1);
    }
    std::vector<std::pair<uint64_t, uint64_t>> scan_buf;
    while (!start.load(std::memory_order_acquire)) {
      // Spin: all threads enter the timed region together.
    }
    for (const Operation& op : ops) {
      Timer op_timer;
      switch (op.type) {
        case OpType::kRead: {
          const std::optional<uint64_t> v = index->Find(op.key);
          workload_detail::DoNotOptimize(v);
          log.found += v.has_value() ? 1 : 0;
          if (options.record_latencies) {
            log.read_ns.push_back(static_cast<double>(op_timer.ElapsedNanos()));
          }
          break;
        }
        case OpType::kUpdate: {
          if (rmw) {
            // Read-modify-write: the new value depends on the read.
            const std::optional<uint64_t> v = index->Find(op.key);
            index->Insert(op.key, v.value_or(0) + 1);
          } else {
            index->Insert(op.key, op.key ^ 0x9E3779B9u);
          }
          if (options.record_latencies) {
            log.insert_ns.push_back(
                static_cast<double>(op_timer.ElapsedNanos()));
          }
          break;
        }
        case OpType::kInsert: {
          index->Insert(op.key, op.key ^ 0x9E3779B9u);
          if (options.record_latencies) {
            log.insert_ns.push_back(
                static_cast<double>(op_timer.ElapsedNanos()));
          }
          break;
        }
        case OpType::kScan: {
          scan_buf.clear();
          const uint64_t span =
              avg_gap * std::max<uint32_t>(1, op.scan_length);
          const uint64_t hi = op.key > UINT64_MAX - span ? UINT64_MAX
                                                         : op.key + span;
          index->RangeScan(op.key, hi, &scan_buf);
          workload_detail::DoNotOptimize(scan_buf.size());
          if (options.record_latencies) {
            log.scan_ns.push_back(static_cast<double>(op_timer.ElapsedNanos()));
          }
          break;
        }
        case OpType::kErase: {
          const bool erased = index->Erase(op.key);
          workload_detail::DoNotOptimize(erased);
          if (options.record_latencies) {
            log.erase_ns.push_back(
                static_cast<double>(op_timer.ElapsedNanos()));
          }
          break;
        }
      }
    }
  };

  Timer timer;
  WorkloadResult result;
  if (n_threads == 1) {
    start.store(true, std::memory_order_release);
    timer = Timer();
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker, t);
    timer = Timer();
    start.store(true, std::memory_order_release);
    for (std::thread& th : threads) th.join();
  }
  result.seconds = timer.ElapsedSeconds();
  result.total_ops = options.ops_per_thread * n_threads;
  result.mops =
      static_cast<double>(result.total_ops) / result.seconds / 1e6;

  std::vector<double> read_ns, insert_ns, scan_ns, erase_ns;
  for (ThreadLog& log : logs) {
    result.found += log.found;
    read_ns.insert(read_ns.end(), log.read_ns.begin(), log.read_ns.end());
    insert_ns.insert(insert_ns.end(), log.insert_ns.begin(),
                     log.insert_ns.end());
    scan_ns.insert(scan_ns.end(), log.scan_ns.begin(), log.scan_ns.end());
    erase_ns.insert(erase_ns.end(), log.erase_ns.begin(), log.erase_ns.end());
  }
  result.read = workload_detail::Summarize(&read_ns);
  result.insert = workload_detail::Summarize(&insert_ns);
  result.scan = workload_detail::Summarize(&scan_ns);
  result.erase = workload_detail::Summarize(&erase_ns);
  return result;
}

// Baseline wrapper: any single-threaded index behind one global mutex.
// The null hypothesis every sharded/concurrent design is measured against.
template <typename Index, typename Key = uint64_t, typename Value = uint64_t>
class GlobalLockIndex {
 public:
  template <typename... Args>
  explicit GlobalLockIndex(Args&&... args)
      : index_(std::forward<Args>(args)...) {}

  // Unlocked access for single-threaded setup (bulk load before the driver
  // starts its worker threads). Allowlisted in docs/STATIC_ANALYSIS.md.
  Index& underlying() LIDX_NO_THREAD_SAFETY_ANALYSIS { return index_; }

  std::optional<Value> Find(const Key& key) const {
    MutexLock lock(mu_);
    return index_.Find(key);
  }
  void Insert(const Key& key, const Value& value) {
    MutexLock lock(mu_);
    index_.Insert(key, value);
  }
  bool Erase(const Key& key) {
    MutexLock lock(mu_);
    return index_.Erase(key);
  }
  void RangeScan(const Key& lo, const Key& hi,
                 std::vector<std::pair<Key, Value>>* out) const {
    MutexLock lock(mu_);
    index_.RangeScan(lo, hi, out);
  }

 private:
  mutable Mutex mu_;
  Index index_ LIDX_GUARDED_BY(mu_);
};

}  // namespace lidx::serving

#endif  // LIDX_SERVING_WORKLOAD_H_
