#include "datasets/workload.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace lidx {

std::vector<Operation> GenerateMixedWorkload(
    const MixedWorkloadSpec& spec, size_t n_ops,
    const std::vector<uint64_t>& existing,
    const std::vector<uint64_t>& insert_pool, uint64_t seed) {
  LIDX_CHECK(!existing.empty());
  const double total = spec.read_fraction + spec.insert_fraction +
                       spec.update_fraction + spec.scan_fraction +
                       spec.erase_fraction;
  LIDX_CHECK(total > 0.0);

  Rng rng(seed);
  ZipfGenerator zipf(existing.size(), spec.zipf_theta > 0 ? spec.zipf_theta
                                                          : 0.5,
                     seed ^ 0xabcdef);
  auto pick_existing = [&]() -> uint64_t {
    const size_t i = spec.zipf_theta > 0
                         ? static_cast<size_t>(zipf.Next())
                         : rng.NextBounded(existing.size());
    return existing[std::min(i, existing.size() - 1)];
  };

  std::vector<Operation> ops;
  ops.reserve(n_ops);
  size_t insert_cursor = 0;
  for (size_t i = 0; i < n_ops; ++i) {
    double r = rng.NextDouble() * total;
    Operation op{OpType::kRead, 0, 0};
    if (r < spec.read_fraction) {
      op.type = OpType::kRead;
      op.key = pick_existing();
    } else if (r < spec.read_fraction + spec.insert_fraction) {
      LIDX_CHECK(insert_cursor < insert_pool.size());
      op.type = OpType::kInsert;
      op.key = insert_pool[insert_cursor++];
    } else if (r < spec.read_fraction + spec.insert_fraction +
                       spec.update_fraction) {
      op.type = OpType::kUpdate;
      op.key = pick_existing();
    } else if (r < spec.read_fraction + spec.insert_fraction +
                       spec.update_fraction + spec.scan_fraction) {
      op.type = OpType::kScan;
      op.key = pick_existing();
      op.scan_length =
          1 + static_cast<uint32_t>(rng.NextBounded(spec.max_scan_length));
    } else {
      op.type = OpType::kErase;
      op.key = pick_existing();
    }
    ops.push_back(op);
  }
  return ops;
}

std::vector<uint64_t> GenerateLookupKeys(const std::vector<uint64_t>& existing,
                                         size_t n, double zipf_theta,
                                         double miss_fraction,
                                         uint64_t seed) {
  LIDX_CHECK(!existing.empty());
  Rng rng(seed);
  ZipfGenerator zipf(existing.size(), zipf_theta > 0 ? zipf_theta : 0.5,
                     seed ^ 0x1234);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < miss_fraction) {
      // A key strictly between two neighbors (or past the end) is a
      // guaranteed miss because key sets are deduplicated.
      const size_t j = rng.NextBounded(existing.size());
      uint64_t candidate = existing[j] + 1;
      if (j + 1 < existing.size() && candidate >= existing[j + 1]) {
        // Neighbors are adjacent integers; probe past the maximum instead.
        candidate = existing.back() + 1 + rng.NextBounded(1u << 20);
      }
      keys.push_back(candidate);
    } else {
      const size_t i_zipf = zipf_theta > 0
                                ? static_cast<size_t>(zipf.Next())
                                : rng.NextBounded(existing.size());
      keys.push_back(existing[std::min(i_zipf, existing.size() - 1)]);
    }
  }
  return keys;
}

std::vector<RangeQuery2D> GenerateRangeQueries(
    const std::vector<Point2D>& data, size_t n, double selectivity,
    uint64_t seed) {
  LIDX_CHECK(!data.empty());
  LIDX_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  Rng rng(seed);
  const double side = std::sqrt(selectivity);
  std::vector<RangeQuery2D> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point2D& c = data[rng.NextBounded(data.size())];
    RangeQuery2D q;
    q.min_x = std::max(0.0, c.x - side / 2);
    q.min_y = std::max(0.0, c.y - side / 2);
    q.max_x = std::min(1.0, q.min_x + side);
    q.max_y = std::min(1.0, q.min_y + side);
    queries.push_back(q);
  }
  return queries;
}

std::vector<Point2D> GenerateKnnQueries(const std::vector<Point2D>& data,
                                        size_t n, uint64_t seed) {
  LIDX_CHECK(!data.empty());
  Rng rng(seed);
  std::vector<Point2D> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point2D& c = data[rng.NextBounded(data.size())];
    Point2D q{c.x + 0.01 * rng.NextGaussian(), c.y + 0.01 * rng.NextGaussian()};
    q.x = std::clamp(q.x, 0.0, 1.0);
    q.y = std::clamp(q.y, 0.0, 1.0);
    queries.push_back(q);
  }
  return queries;
}

}  // namespace lidx
