#ifndef LIDX_DATASETS_WORKLOAD_H_
#define LIDX_DATASETS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "datasets/generators.h"

namespace lidx {

// Query/operation workload generators used by tests, examples, and every
// benchmark harness. YCSB-flavoured mixes for 1-D key/value workloads and
// spatial query workloads (point / range / kNN) for the multi-dimensional
// experiments.

enum class OpType : uint8_t { kRead, kInsert, kUpdate, kScan, kErase };

struct Operation {
  OpType type;
  uint64_t key;
  uint32_t scan_length;  // For kScan: number of records to read.
};

struct MixedWorkloadSpec {
  double read_fraction = 0.5;
  double insert_fraction = 0.5;
  double update_fraction = 0.0;
  double scan_fraction = 0.0;
  double erase_fraction = 0.0;
  // Zipf skew for read keys; 0 = uniform over existing keys.
  double zipf_theta = 0.0;
  uint32_t max_scan_length = 100;
};

// Generates `n_ops` operations. Reads/updates/erases pick keys from
// `existing` (Zipf-skewed if requested); inserts draw fresh keys from
// `insert_pool`, consumed in order. `insert_pool` must contain at least the
// number of inserts implied by the mix.
std::vector<Operation> GenerateMixedWorkload(
    const MixedWorkloadSpec& spec, size_t n_ops,
    const std::vector<uint64_t>& existing,
    const std::vector<uint64_t>& insert_pool, uint64_t seed = 99);

// Point-lookup keys: `n` keys sampled (Zipf-skewed or uniform) from
// `existing`, plus a `miss_fraction` of keys guaranteed absent.
std::vector<uint64_t> GenerateLookupKeys(const std::vector<uint64_t>& existing,
                                         size_t n, double zipf_theta,
                                         double miss_fraction,
                                         uint64_t seed = 17);

// ----- Spatial query workloads -----

struct RangeQuery2D {
  double min_x, min_y, max_x, max_y;

  bool Contains(const Point2D& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
};

// Square range queries with an expected fractional area `selectivity`,
// centered on sampled data points so they are non-empty on skewed data.
std::vector<RangeQuery2D> GenerateRangeQueries(
    const std::vector<Point2D>& data, size_t n, double selectivity,
    uint64_t seed = 23);

// kNN query points sampled from the data with jitter.
std::vector<Point2D> GenerateKnnQueries(const std::vector<Point2D>& data,
                                        size_t n, uint64_t seed = 29);

}  // namespace lidx

#endif  // LIDX_DATASETS_WORKLOAD_H_
