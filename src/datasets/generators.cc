#include "datasets/generators.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace lidx {

namespace {

// Sorts, deduplicates, and (if duplicates reduced the count) tops up with
// fresh perturbed keys so the caller always gets exactly n distinct keys.
std::vector<uint64_t> Finalize(std::vector<uint64_t> keys, size_t n,
                               Rng* rng) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) {
    const size_t missing = n - keys.size();
    for (size_t i = 0; i < missing; ++i) {
      // Perturb an existing key; collisions get removed on the next pass.
      const uint64_t base = keys[rng->NextBounded(keys.size())];
      keys.push_back(base + 1 + rng->NextBounded(1u << 16));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  keys.resize(n);
  return keys;
}

std::vector<uint64_t> UniformKeys(size_t n, Rng* rng) {
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  for (size_t i = 0; i < n + n / 8; ++i) {
    // Keys stay below 2^53 so they are exactly representable as double —
    // learned models train in double space, and two distinct keys mapping
    // to one double would break the strict-ordering preconditions.
    keys.push_back(rng->Next() >> 11);
  }
  return keys;
}

std::vector<uint64_t> LognormalKeys(size_t n, Rng* rng) {
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  for (size_t i = 0; i < n + n / 8; ++i) {
    const double v = std::exp(2.0 * rng->NextGaussian() + 20.0);
    keys.push_back(static_cast<uint64_t>(v));
  }
  return keys;
}

std::vector<uint64_t> ClusteredKeys(size_t n, Rng* rng) {
  // ~n/1000 clusters at random centers, tight lognormal spread within each,
  // separated by gaps of ~2^40.
  const size_t num_clusters = std::max<size_t>(8, n / 1000);
  std::vector<uint64_t> centers;
  centers.reserve(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    // < 2^50: keys remain exactly representable as double (see UniformKeys).
    centers.push_back(rng->Next() >> 14);
  }
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  for (size_t i = 0; i < n + n / 8; ++i) {
    const uint64_t center = centers[rng->NextBounded(num_clusters)];
    const uint64_t offset = rng->NextBounded(1u << 14);
    keys.push_back(center + offset);
  }
  return keys;
}

std::vector<uint64_t> StepKeys(size_t n, Rng* rng) {
  // Long runs of densely packed keys followed by large jumps: a CDF made of
  // near-vertical segments, like the "books" dataset's popularity plateaus.
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  uint64_t cur = 1u << 20;
  while (keys.size() < n + n / 8) {
    const size_t run = 64 + rng->NextBounded(4096);
    for (size_t i = 0; i < run && keys.size() < n + n / 8; ++i) {
      cur += 1 + rng->NextBounded(4);
      keys.push_back(cur);
    }
    cur += (1ull << 33) + rng->NextBounded(1ull << 36);
  }
  return keys;
}

std::vector<uint64_t> SequentialKeys(size_t n, Rng* rng) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  uint64_t cur = 1000;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + rng->NextBounded(3);
    keys.push_back(cur);
  }
  return keys;
}

std::vector<uint64_t> AdversarialKeys(size_t n, Rng* rng) {
  // The poisoning construction lives in AdversarialStream (shared with
  // bench_e14/e23 and the drift tests); this batch spelling just drains it.
  AdversarialStream::Options opt;
  opt.seed = rng->Next();
  AdversarialStream stream(opt);
  return stream.Take(n + n / 8);
}

}  // namespace

AdversarialStream::AdversarialStream() : AdversarialStream(Options()) {}

AdversarialStream::AdversarialStream(const Options& options)
    : options_(options), rng_(options.seed), cur_(options.start) {}

uint64_t AdversarialStream::Next() {
  // Dense bursts of consecutive keys separated by exponentially growing
  // gaps (cycled so keys never overflow): every linear segment either
  // over- or under-shoots, maximizing model error for indexes without an
  // error bound.
  if (burst_left_ == 0) {
    if (!first_burst_) {
      cur_ += gap_;
      gap_ <<= 1;
      if (gap_ > (uint64_t{1} << options_.max_gap_log2)) gap_ = 1;
    }
    first_burst_ = false;
    burst_left_ = 16 + rng_.NextBounded(32);
  }
  --burst_left_;
  cur_ += 1;
  return cur_;
}

std::vector<uint64_t> AdversarialStream::Take(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(Next());
  return keys;
}

ShiftingStream::ShiftingStream(std::vector<uint64_t> keys,
                               const Options& options)
    : keys_(std::move(keys)), options_(options), rng_(options.seed) {
  LIDX_CHECK(!keys_.empty());
  if (options_.phases.empty()) options_.phases.push_back(Phase{});
  if (options_.ops_per_phase == 0) options_.ops_per_phase = 1;
  EnterPhase(0);
}

void ShiftingStream::EnterPhase(size_t phase) {
  phase_ = phase % options_.phases.size();
  ops_in_phase_ = 0;
  const Phase& p = options_.phases[phase_];
  const double lo = std::min(std::max(p.lo, 0.0), 1.0);
  const double hi = std::min(std::max(p.hi, lo), 1.0);
  const double n = static_cast<double>(keys_.size());
  slice_begin_ = static_cast<size_t>(lo * n);
  if (slice_begin_ >= keys_.size()) slice_begin_ = keys_.size() - 1;
  const size_t slice_end =
      std::max(slice_begin_ + 1, static_cast<size_t>(hi * n));
  slice_size_ = std::min(slice_end, keys_.size()) - slice_begin_;
  if (p.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(
        slice_size_, p.zipf_theta, options_.seed ^ (0x9E37 + phase_));
  } else {
    zipf_.reset();
  }
}

uint64_t ShiftingStream::Next() {
  if (ops_in_phase_ >= options_.ops_per_phase) {
    EnterPhase(phase_ + 1);
  }
  ++ops_in_phase_;
  ++ops_;
  size_t offset = zipf_ != nullptr
                      ? static_cast<size_t>(zipf_->Next())
                      : static_cast<size_t>(rng_.NextBounded(slice_size_));
  if (offset >= slice_size_) offset = slice_size_ - 1;
  return keys_[slice_begin_ + offset];
}

std::string KeyDistributionName(KeyDistribution d) {
  switch (d) {
    case KeyDistribution::kUniform: return "uniform";
    case KeyDistribution::kLognormal: return "lognormal";
    case KeyDistribution::kClustered: return "clustered";
    case KeyDistribution::kStep: return "step";
    case KeyDistribution::kSequential: return "sequential";
    case KeyDistribution::kAdversarial: return "adversarial";
  }
  return "unknown";
}

std::vector<uint64_t> GenerateKeys(KeyDistribution dist, size_t n,
                                   uint64_t seed) {
  LIDX_CHECK(n > 0);
  Rng rng(seed);
  std::vector<uint64_t> raw;
  switch (dist) {
    case KeyDistribution::kUniform: raw = UniformKeys(n, &rng); break;
    case KeyDistribution::kLognormal: raw = LognormalKeys(n, &rng); break;
    case KeyDistribution::kClustered: raw = ClusteredKeys(n, &rng); break;
    case KeyDistribution::kStep: raw = StepKeys(n, &rng); break;
    case KeyDistribution::kSequential: raw = SequentialKeys(n, &rng); break;
    case KeyDistribution::kAdversarial: raw = AdversarialKeys(n, &rng); break;
  }
  return Finalize(std::move(raw), n, &rng);
}

std::vector<KeyDistribution> AllKeyDistributions() {
  return {KeyDistribution::kUniform,   KeyDistribution::kLognormal,
          KeyDistribution::kClustered, KeyDistribution::kStep,
          KeyDistribution::kSequential, KeyDistribution::kAdversarial};
}

std::string StringKeyStyleName(StringKeyStyle s) {
  switch (s) {
    case StringKeyStyle::kUrls: return "urls";
    case StringKeyStyle::kWords: return "words";
    case StringKeyStyle::kDeepPrefix: return "deep-prefix";
  }
  return "unknown";
}

namespace {

std::string RandomWord(Rng* rng, size_t min_len, size_t max_len) {
  const size_t len = min_len + rng->NextBounded(max_len - min_len + 1);
  std::string w;
  w.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    w.push_back(static_cast<char>('a' + rng->NextBounded(26)));
  }
  return w;
}

}  // namespace

std::vector<std::string> GenerateStringKeys(StringKeyStyle style, size_t n,
                                            uint64_t seed) {
  LIDX_CHECK(n > 0);
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n + n / 4);
  switch (style) {
    case StringKeyStyle::kUrls: {
      // A few hundred domains, many paths.
      std::vector<std::string> domains;
      const size_t num_domains = std::max<size_t>(4, n / 200);
      for (size_t d = 0; d < num_domains; ++d) {
        domains.push_back(RandomWord(&rng, 4, 12) + ".com");
      }
      while (keys.size() < n + n / 4) {
        keys.push_back("https://" + domains[rng.NextBounded(domains.size())] +
                       "/" + RandomWord(&rng, 2, 8) + "/" +
                       RandomWord(&rng, 3, 12));
      }
      break;
    }
    case StringKeyStyle::kWords: {
      while (keys.size() < n + n / 4) {
        keys.push_back(RandomWord(&rng, 4, 16));
      }
      break;
    }
    case StringKeyStyle::kDeepPrefix: {
      const std::string prefix =
          "tenant/0000000042/region/eu-west-1/bucket/logs/partition/";
      while (keys.size() < n + n / 4) {
        keys.push_back(prefix + RandomWord(&rng, 6, 14));
      }
      break;
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) {
    // Top up rare dedup shortfalls with suffix-perturbed copies.
    std::string k = keys[rng.NextBounded(keys.size())];
    k.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    keys.push_back(std::move(k));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  keys.resize(n);
  return keys;
}

std::string PointDistributionName(PointDistribution d) {
  switch (d) {
    case PointDistribution::kUniform2D: return "uniform2d";
    case PointDistribution::kGaussianClusters: return "gauss-clusters";
    case PointDistribution::kCorrelated: return "correlated";
    case PointDistribution::kSkewedGrid: return "skewed-grid";
  }
  return "unknown";
}

std::vector<Point2D> GeneratePoints(PointDistribution dist, size_t n,
                                    uint64_t seed) {
  LIDX_CHECK(n > 0);
  Rng rng(seed);
  std::vector<Point2D> pts;
  pts.reserve(n);
  auto clamp01 = [](double v) {
    if (v < 0.0) return 0.0;
    if (v >= 1.0) return std::nextafter(1.0, 0.0);
    return v;
  };
  switch (dist) {
    case PointDistribution::kUniform2D: {
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      break;
    }
    case PointDistribution::kGaussianClusters: {
      const size_t k = 16;
      std::vector<Point2D> centers;
      for (size_t c = 0; c < k; ++c) {
        centers.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      for (size_t i = 0; i < n; ++i) {
        const Point2D& c = centers[rng.NextBounded(k)];
        pts.push_back({clamp01(c.x + 0.03 * rng.NextGaussian()),
                       clamp01(c.y + 0.03 * rng.NextGaussian())});
      }
      break;
    }
    case PointDistribution::kCorrelated: {
      for (size_t i = 0; i < n; ++i) {
        const double x = rng.NextDouble();
        const double y = clamp01(x + 0.05 * rng.NextGaussian());
        pts.push_back({x, y});
      }
      break;
    }
    case PointDistribution::kSkewedGrid: {
      // 64x64 grid with Zipf-distributed cell popularity.
      const uint64_t cells = 64;
      ZipfGenerator zipf(cells * cells, 0.9, seed ^ 0x5bd1e995);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t cell = zipf.Next();
        const double cx = static_cast<double>(cell % cells);
        const double cy = static_cast<double>(cell / cells);
        pts.push_back({clamp01((cx + rng.NextDouble()) / cells),
                       clamp01((cy + rng.NextDouble()) / cells)});
      }
      break;
    }
  }
  return pts;
}

std::vector<PointDistribution> AllPointDistributions() {
  return {PointDistribution::kUniform2D, PointDistribution::kGaussianClusters,
          PointDistribution::kCorrelated, PointDistribution::kSkewedGrid};
}

}  // namespace lidx
