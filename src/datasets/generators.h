#ifndef LIDX_DATASETS_GENERATORS_H_
#define LIDX_DATASETS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lidx {

// Synthetic key/point generators. They stand in for the public datasets used
// by the learned-index literature (SOSD books/osm/fb, NYC taxi): each
// distribution targets a CDF regime that stresses learned indexes
// differently (see DESIGN.md, substitutions table).

// ----- One-dimensional key sets (sorted, deduplicated) -----

enum class KeyDistribution {
  kUniform,    // Smooth CDF; easiest case for any learned model.
  kLognormal,  // Heavy-tailed; curved CDF (osm-like).
  kClustered,  // Dense clusters separated by wide gaps (fb-like).
  kStep,       // Piecewise-flat CDF with abrupt jumps (books-like).
  kSequential, // 0..n-1 with small random gaps (auto-increment IDs).
  kAdversarial // Poisoned CDF: pathological for unbounded-error models.
};

// Human-readable name used in benchmark tables.
std::string KeyDistributionName(KeyDistribution d);

// Generates `n` distinct uint64 keys, sorted ascending.
std::vector<uint64_t> GenerateKeys(KeyDistribution dist, size_t n,
                                   uint64_t seed = 42);

// All distributions, for parameterized sweeps.
std::vector<KeyDistribution> AllKeyDistributions();

// ----- String key sets (sorted, deduplicated) -----

enum class StringKeyStyle {
  kUrls,        // "https://<domain>/<path>" — shared scheme prefix,
                // diversity right after it (learnable fingerprints).
  kWords,       // Random lowercase words, uniform first bytes.
  kDeepPrefix   // Keys diverge only after a long shared prefix — the
                // fingerprint-collision worst case for string models.
};

std::string StringKeyStyleName(StringKeyStyle s);

// Generates `n` distinct strings, sorted ascending (byte order).
std::vector<std::string> GenerateStringKeys(StringKeyStyle style, size_t n,
                                            uint64_t seed = 42);

// ----- Two-dimensional point sets -----

struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D& a, const Point2D& b) {
    return a.x == b.x && a.y == b.y;
  }
};

enum class PointDistribution {
  kUniform2D,     // Uniform in the unit square.
  kGaussianClusters,  // Mixture of Gaussian blobs (urban hot spots).
  kCorrelated,    // y strongly correlated with x (taxi pickup/dropoff-like).
  kSkewedGrid     // Zipf-weighted grid cells (skewed spatial occupancy).
};

std::string PointDistributionName(PointDistribution d);

// Generates `n` points in the unit square [0,1)^2.
std::vector<Point2D> GeneratePoints(PointDistribution dist, size_t n,
                                    uint64_t seed = 42);

std::vector<PointDistribution> AllPointDistributions();

}  // namespace lidx

#endif  // LIDX_DATASETS_GENERATORS_H_
