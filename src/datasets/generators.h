#ifndef LIDX_DATASETS_GENERATORS_H_
#define LIDX_DATASETS_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace lidx {

// Synthetic key/point generators. They stand in for the public datasets used
// by the learned-index literature (SOSD books/osm/fb, NYC taxi): each
// distribution targets a CDF regime that stresses learned indexes
// differently (see DESIGN.md, substitutions table).

// ----- One-dimensional key sets (sorted, deduplicated) -----

enum class KeyDistribution {
  kUniform,    // Smooth CDF; easiest case for any learned model.
  kLognormal,  // Heavy-tailed; curved CDF (osm-like).
  kClustered,  // Dense clusters separated by wide gaps (fb-like).
  kStep,       // Piecewise-flat CDF with abrupt jumps (books-like).
  kSequential, // 0..n-1 with small random gaps (auto-increment IDs).
  kAdversarial // Poisoned CDF: pathological for unbounded-error models.
};

// Human-readable name used in benchmark tables.
std::string KeyDistributionName(KeyDistribution d);

// Generates `n` distinct uint64 keys, sorted ascending.
std::vector<uint64_t> GenerateKeys(KeyDistribution dist, size_t n,
                                   uint64_t seed = 42);

// All distributions, for parameterized sweeps.
std::vector<KeyDistribution> AllKeyDistributions();

// ----- Drift / poisoning streams -----
//
// Streaming counterparts to the batch generators above, shared by
// bench_e14 (poisoning), bench_e23 (adaptation) and the drift tests so the
// attack and shift constructions live in exactly one place.

// Unbounded generator of the poisoning-style key sequence behind
// KeyDistribution::kAdversarial (cf. Kornaropoulos et al., SIGMOD'22):
// dense bursts of consecutive keys separated by exponentially growing
// gaps, so every linear segment either over- or under-shoots. Next() is
// strictly increasing, which makes the stream directly usable as an
// insert-time attack against a live index.
class AdversarialStream {
 public:
  struct Options {
    uint64_t start = 1u << 16;   // First burst begins just above this.
    uint64_t max_gap_log2 = 34;  // Gap cycles back to 1 beyond 2^this.
    uint64_t seed = 42;
  };

  AdversarialStream();
  explicit AdversarialStream(const Options& options);

  // Next key; strictly greater than every key returned before it.
  uint64_t Next();

  // Convenience: the next `n` keys (ascending, distinct by construction).
  std::vector<uint64_t> Take(size_t n);

 private:
  Options options_;
  Rng rng_;
  uint64_t cur_;
  uint64_t gap_ = 1;
  size_t burst_left_ = 0;
  bool first_burst_ = true;
};

// Models workload distribution shift: lookup keys are drawn from a sorted
// key population, but *which slice* of the population (and how skewed the
// draw is) changes from phase to phase. Each phase covers the fractional
// rank range [lo, hi) of the population; zipf_theta > 0 skews draws toward
// the slice start. After ops_per_phase draws the stream advances to the
// next phase, wrapping around — a step change in the query distribution,
// which is exactly the signal a drift detector must separate from noise.
class ShiftingStream {
 public:
  struct Phase {
    double lo = 0.0;
    double hi = 1.0;
    double zipf_theta = 0.0;  // 0 = uniform within the slice.
  };

  struct Options {
    std::vector<Phase> phases;   // Empty = one uniform phase over all keys.
    size_t ops_per_phase = 100000;
    uint64_t seed = 42;
  };

  ShiftingStream(std::vector<uint64_t> keys, const Options& options);

  // Next lookup key, drawn from the current phase's slice.
  uint64_t Next();

  size_t phase() const { return phase_; }
  size_t num_phases() const { return options_.phases.size(); }
  size_t ops_drawn() const { return ops_; }

 private:
  void EnterPhase(size_t phase);

  std::vector<uint64_t> keys_;
  Options options_;
  Rng rng_;
  size_t phase_ = 0;
  size_t ops_ = 0;
  size_t ops_in_phase_ = 0;
  size_t slice_begin_ = 0;
  size_t slice_size_ = 1;
  std::unique_ptr<ZipfGenerator> zipf_;
};

// ----- String key sets (sorted, deduplicated) -----

enum class StringKeyStyle {
  kUrls,        // "https://<domain>/<path>" — shared scheme prefix,
                // diversity right after it (learnable fingerprints).
  kWords,       // Random lowercase words, uniform first bytes.
  kDeepPrefix   // Keys diverge only after a long shared prefix — the
                // fingerprint-collision worst case for string models.
};

std::string StringKeyStyleName(StringKeyStyle s);

// Generates `n` distinct strings, sorted ascending (byte order).
std::vector<std::string> GenerateStringKeys(StringKeyStyle style, size_t n,
                                            uint64_t seed = 42);

// ----- Two-dimensional point sets -----

struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D& a, const Point2D& b) {
    return a.x == b.x && a.y == b.y;
  }
};

enum class PointDistribution {
  kUniform2D,     // Uniform in the unit square.
  kGaussianClusters,  // Mixture of Gaussian blobs (urban hot spots).
  kCorrelated,    // y strongly correlated with x (taxi pickup/dropoff-like).
  kSkewedGrid     // Zipf-weighted grid cells (skewed spatial occupancy).
};

std::string PointDistributionName(PointDistribution d);

// Generates `n` points in the unit square [0,1)^2.
std::vector<Point2D> GeneratePoints(PointDistribution dist, size_t n,
                                    uint64_t seed = 42);

std::vector<PointDistribution> AllPointDistributions();

}  // namespace lidx

#endif  // LIDX_DATASETS_GENERATORS_H_
