#include "sfc/morton.h"

#include <cmath>

namespace lidx::sfc {

namespace {

// Spreads the low 32 bits of v so bit i lands at position 2*i.
uint64_t Spread2(uint64_t v) {
  v &= 0xFFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

uint32_t Compact2(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(v);
}

// Spreads the low 21 bits of v so bit i lands at position 3*i.
uint64_t Spread3(uint64_t v) {
  v &= 0x1FFFFFull;
  v = (v | (v << 32)) & 0x001F00000000FFFFull;
  v = (v | (v << 16)) & 0x001F0000FF0000FFull;
  v = (v | (v << 8)) & 0x100F00F00F00F00Full;
  v = (v | (v << 4)) & 0x10C30C30C30C30C3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

uint32_t Compact3(uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v | (v >> 2)) & 0x10C30C30C30C30C3ull;
  v = (v | (v >> 4)) & 0x100F00F00F00F00Full;
  v = (v | (v >> 8)) & 0x001F0000FF0000FFull;
  v = (v | (v >> 16)) & 0x001F00000000FFFFull;
  v = (v | (v >> 32)) & 0x00000000001FFFFFull;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint64_t MortonEncode2D(uint32_t x, uint32_t y) {
  return Spread2(x) | (Spread2(y) << 1);
}

std::pair<uint32_t, uint32_t> MortonDecode2D(uint64_t code) {
  return {Compact2(code), Compact2(code >> 1)};
}

uint64_t MortonEncode3D(uint32_t x, uint32_t y, uint32_t z) {
  return Spread3(x) | (Spread3(y) << 1) | (Spread3(z) << 2);
}

void MortonDecode3D(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z) {
  *x = Compact3(code);
  *y = Compact3(code >> 1);
  *z = Compact3(code >> 2);
}

uint32_t Quantize(double v, int bits) {
  if (v < 0.0) v = 0.0;
  if (v >= 1.0) v = std::nextafter(1.0, 0.0);
  const double scale = static_cast<double>(1ull << bits);
  uint64_t q = static_cast<uint64_t>(v * scale);
  const uint64_t max = (1ull << bits) - 1;
  if (q > max) q = max;
  return static_cast<uint32_t>(q);
}

double Dequantize(uint32_t q, int bits) {
  const double scale = static_cast<double>(1ull << bits);
  return (static_cast<double>(q) + 0.5) / scale;
}

}  // namespace lidx::sfc
