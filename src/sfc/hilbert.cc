#include "sfc/hilbert.h"

namespace lidx::sfc {

namespace {

// Rotates/reflects a quadrant-local coordinate pair per the classic
// Hilbert-curve construction (Tropf-style iterative formulation).
void Rotate(uint64_t side, uint32_t* x, uint32_t* y, uint64_t rx,
            uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = static_cast<uint32_t>(side - 1 - *x);
      *y = static_cast<uint32_t>(side - 1 - *y);
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode2D(uint32_t x, uint32_t y, int bits) {
  uint64_t d = 0;
  const uint64_t side = 1ull << bits;
  for (uint64_t s = side >> 1; s > 0; s >>= 1) {
    const uint64_t rx = (x & s) ? 1 : 0;
    const uint64_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Reflection is about the full grid during encoding.
    Rotate(side, &x, &y, rx, ry);
  }
  return d;
}

std::pair<uint32_t, uint32_t> HilbertDecode2D(uint64_t d, int bits) {
  uint32_t x = 0, y = 0;
  uint64_t t = d;
  for (uint64_t s = 1; s < (1ull << bits); s <<= 1) {
    const uint64_t rx = 1 & (t / 2);
    const uint64_t ry = 1 & (t ^ rx);
    Rotate(s, &x, &y, rx, ry);
    x += static_cast<uint32_t>(s * rx);
    y += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
  return {x, y};
}

}  // namespace lidx::sfc
