#ifndef LIDX_SFC_HILBERT_H_
#define LIDX_SFC_HILBERT_H_

#include <cstdint>
#include <utility>

namespace lidx::sfc {

// 2-D Hilbert curve of order `bits` (each coordinate in [0, 2^bits)).
// Hilbert order preserves locality better than Z-order (every step on the
// curve is a unit step in space), at the cost of a more expensive
// per-point transform — exactly the trade-off benchmarked in E12.

// Maps (x, y) to its distance along the Hilbert curve.
uint64_t HilbertEncode2D(uint32_t x, uint32_t y, int bits);

// Inverse: distance along the curve back to (x, y).
std::pair<uint32_t, uint32_t> HilbertDecode2D(uint64_t d, int bits);

}  // namespace lidx::sfc

#endif  // LIDX_SFC_HILBERT_H_
