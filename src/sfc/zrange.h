#ifndef LIDX_SFC_ZRANGE_H_
#define LIDX_SFC_ZRANGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lidx::sfc {

// Range-query machinery on the 2-D Z-order curve. A rectangle in space maps
// to many disjoint intervals on the curve; the two classic tools are:
//
//  * BIGMIN / LITMAX (Tropf & Herzog 1981): given a code outside the query
//    rectangle, jump directly to the next (previous) code inside it. This
//    lets an index scan a sorted code array and skip dead stretches without
//    materializing the interval decomposition.
//  * Explicit decomposition of the rectangle into at most `max_ranges` code
//    intervals (over-covering when the budget is hit).

// A query rectangle in grid coordinates (inclusive bounds).
struct ZRect {
  uint32_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  bool ContainsCell(uint32_t x, uint32_t y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
};

// True iff the point encoded by `code` lies inside `rect`.
bool ZCodeInRect(uint64_t code, const ZRect& rect);

// Smallest Z-code >= `code` that lies inside `rect`. `code` is typically the
// first code found outside the rectangle during a scan. Requires that such a
// code exists (i.e. code <= MortonEncode2D(rect.max_x, rect.max_y) region);
// returns max_code+1-like sentinel UINT64_MAX if the rectangle has no code
// >= `code`.
uint64_t BigMin(uint64_t code, const ZRect& rect);

// Largest Z-code <= `code` inside `rect`; UINT64_MAX if none.
uint64_t LitMax(uint64_t code, const ZRect& rect);

// An inclusive interval [lo, hi] of Z-codes.
struct ZInterval {
  uint64_t lo;
  uint64_t hi;
};

// Decomposes `rect` into at most `max_ranges` sorted, disjoint Z-intervals
// that together cover every cell of the rectangle. When the budget forces
// coarsening, intervals may include codes outside the rectangle (callers
// must post-filter); with an unlimited budget the cover is exact.
std::vector<ZInterval> DecomposeZRanges(const ZRect& rect, size_t max_ranges);

// Same decomposition on the HILBERT curve of order `bits`: any
// power-of-two-aligned block is traversed contiguously by the Hilbert
// curve (it enters and leaves each quadrant exactly once), so a block of
// side s maps to one interval of s*s consecutive curve positions starting
// at the minimum of its corner encodings. Hilbert's better locality means
// the same rectangle needs ~2x fewer intervals than Z-order (E12/A5).
std::vector<ZInterval> DecomposeHilbertRanges(const ZRect& rect, int bits,
                                              size_t max_ranges);

}  // namespace lidx::sfc

#endif  // LIDX_SFC_ZRANGE_H_
