#include "sfc/zrange3d.h"

#include "common/macros.h"
#include "sfc/morton.h"

namespace lidx::sfc {

namespace {

// Bits of dimension d (0 = x) within a 3-D Morton code: positions with
// bit_index % 3 == d, up to 21 bits per dimension (63 bits total).
uint64_t DimMask3(int bit) {
  constexpr uint64_t kX = 0x1249249249249249ull;  // bits 0, 3, 6, ...
  switch (bit % 3) {
    case 0: return kX;
    case 1: return kX << 1;
    default: return kX << 2;
  }
}

uint64_t LoadOneZeros(uint64_t v, int bit) {
  const uint64_t lower =
      (bit == 0) ? 0 : (((1ull << bit) - 1) & DimMask3(bit));
  v |= (1ull << bit);
  v &= ~lower;
  return v;
}

uint64_t LoadZeroOnes(uint64_t v, int bit) {
  const uint64_t lower =
      (bit == 0) ? 0 : (((1ull << bit) - 1) & DimMask3(bit));
  v &= ~(1ull << bit);
  v |= lower;
  return v;
}

}  // namespace

bool ZCodeInBox3D(uint64_t code, const ZBox3D& box) {
  uint32_t x, y, z;
  MortonDecode3D(code, &x, &y, &z);
  return box.ContainsCell(x, y, z);
}

uint64_t BigMin3D(uint64_t code, const ZBox3D& box) {
  uint64_t zmin = MortonEncode3D(box.min_x, box.min_y, box.min_z);
  uint64_t zmax = MortonEncode3D(box.max_x, box.max_y, box.max_z);
  uint64_t bigmin = UINT64_MAX;
  for (int bit = 62; bit >= 0; --bit) {
    const unsigned z_bit = (code >> bit) & 1;
    const unsigned min_bit = (zmin >> bit) & 1;
    const unsigned max_bit = (zmax >> bit) & 1;
    const unsigned combo = (z_bit << 2) | (min_bit << 1) | max_bit;
    switch (combo) {
      case 0b000:
        break;
      case 0b001:
        bigmin = LoadOneZeros(zmin, bit);
        zmax = LoadZeroOnes(zmax, bit);
        break;
      case 0b011:
        return zmin;
      case 0b100:
        return bigmin;
      case 0b101:
        zmin = LoadOneZeros(zmin, bit);
        break;
      case 0b111:
        break;
      default:
        LIDX_CHECK(false);  // zmin > zmax in some dimension: malformed box.
    }
  }
  return bigmin;
}

}  // namespace lidx::sfc
