#ifndef LIDX_SFC_MORTON_H_
#define LIDX_SFC_MORTON_H_

#include <cstdint>
#include <utility>

namespace lidx::sfc {

// Z-order (Morton) curve: bit interleaving of fixed-point coordinates.
// 2-D uses 32 bits per dimension (full 64-bit code); 3-D uses 21 bits per
// dimension. All functions are branch-free magic-number spreads.

// Interleaves x (even bits) and y (odd bits).
uint64_t MortonEncode2D(uint32_t x, uint32_t y);
std::pair<uint32_t, uint32_t> MortonDecode2D(uint64_t code);

// 3-D: 21 bits per coordinate (values >= 2^21 are truncated).
uint64_t MortonEncode3D(uint32_t x, uint32_t y, uint32_t z);
void MortonDecode3D(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z);

// Maps a double in [0,1) to a dimension-appropriate fixed-point grid
// coordinate. `bits` is the per-dimension resolution.
uint32_t Quantize(double v, int bits);
double Dequantize(uint32_t q, int bits);

}  // namespace lidx::sfc

#endif  // LIDX_SFC_MORTON_H_
