#ifndef LIDX_SFC_ZRANGE3D_H_
#define LIDX_SFC_ZRANGE3D_H_

#include <cstddef>
#include <cstdint>

namespace lidx::sfc {

// BIGMIN machinery for the 3-D Z-order curve. The Tropf-Herzog algorithm
// generalizes directly: the per-bit dimension mask cycles with period 3
// instead of 2. Used by the 3-D ZM-index's box queries.

// An axis-aligned box in grid coordinates (inclusive bounds).
struct ZBox3D {
  uint32_t min_x = 0, min_y = 0, min_z = 0;
  uint32_t max_x = 0, max_y = 0, max_z = 0;

  bool ContainsCell(uint32_t x, uint32_t y, uint32_t z) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y &&
           z >= min_z && z <= max_z;
  }
};

// True iff the cell encoded by `code` lies inside `box`.
bool ZCodeInBox3D(uint64_t code, const ZBox3D& box);

// Smallest 3-D Z-code >= `code` inside `box`; UINT64_MAX if none.
uint64_t BigMin3D(uint64_t code, const ZBox3D& box);

}  // namespace lidx::sfc

#endif  // LIDX_SFC_ZRANGE3D_H_
