#include "sfc/zrange.h"

#include <algorithm>

#include "common/macros.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"

namespace lidx::sfc {

namespace {

constexpr uint64_t kEvenBits = 0x5555555555555555ull;  // x dimension.
constexpr uint64_t kOddBits = 0xAAAAAAAAAAAAAAAAull;   // y dimension.

uint64_t DimMask(int bit) { return (bit & 1) ? kOddBits : kEvenBits; }

// LOAD "10...0": set `bit`, clear all lower bits of the same dimension.
uint64_t LoadOneZeros(uint64_t v, int bit) {
  const uint64_t lower =
      (bit == 0) ? 0 : (((1ull << bit) - 1) & DimMask(bit));
  v |= (1ull << bit);
  v &= ~lower;
  return v;
}

// LOAD "01...1": clear `bit`, set all lower bits of the same dimension.
uint64_t LoadZeroOnes(uint64_t v, int bit) {
  const uint64_t lower =
      (bit == 0) ? 0 : (((1ull << bit) - 1) & DimMask(bit));
  v &= ~(1ull << bit);
  v |= lower;
  return v;
}

}  // namespace

bool ZCodeInRect(uint64_t code, const ZRect& rect) {
  const auto [x, y] = MortonDecode2D(code);
  return rect.ContainsCell(x, y);
}

uint64_t BigMin(uint64_t code, const ZRect& rect) {
  uint64_t zmin = MortonEncode2D(rect.min_x, rect.min_y);
  uint64_t zmax = MortonEncode2D(rect.max_x, rect.max_y);
  uint64_t bigmin = UINT64_MAX;
  for (int bit = 63; bit >= 0; --bit) {
    const unsigned z_bit = (code >> bit) & 1;
    const unsigned min_bit = (zmin >> bit) & 1;
    const unsigned max_bit = (zmax >> bit) & 1;
    const unsigned combo = (z_bit << 2) | (min_bit << 1) | max_bit;
    switch (combo) {
      case 0b000:
        break;
      case 0b001:
        bigmin = LoadOneZeros(zmin, bit);
        zmax = LoadZeroOnes(zmax, bit);
        break;
      case 0b011:
        // code's path is entirely below the rectangle: the answer is zmin.
        return zmin;
      case 0b100:
        // code's path is entirely above the rectangle: best seen so far.
        return bigmin;
      case 0b101:
        zmin = LoadOneZeros(zmin, bit);
        break;
      case 0b111:
        break;
      default:
        // 0b010 / 0b110 mean zmin > zmax in this dimension: impossible for a
        // well-formed rectangle.
        LIDX_CHECK(false);
    }
  }
  return bigmin;
}

uint64_t LitMax(uint64_t code, const ZRect& rect) {
  uint64_t zmin = MortonEncode2D(rect.min_x, rect.min_y);
  uint64_t zmax = MortonEncode2D(rect.max_x, rect.max_y);
  uint64_t litmax = UINT64_MAX;
  for (int bit = 63; bit >= 0; --bit) {
    const unsigned z_bit = (code >> bit) & 1;
    const unsigned min_bit = (zmin >> bit) & 1;
    const unsigned max_bit = (zmax >> bit) & 1;
    const unsigned combo = (z_bit << 2) | (min_bit << 1) | max_bit;
    switch (combo) {
      case 0b000:
        break;
      case 0b001:
        // code's bit is 0, so any candidate in the upper half would exceed
        // it: restrict the rectangle to the lower half.
        zmax = LoadZeroOnes(zmax, bit);
        break;
      case 0b011:
        return litmax;
      case 0b100:
        return zmax;
      case 0b101:
        litmax = LoadZeroOnes(zmax, bit);
        zmin = LoadOneZeros(zmin, bit);
        break;
      case 0b111:
        break;
      default:
        LIDX_CHECK(false);
    }
  }
  return litmax;
}

namespace {

struct Block {
  uint32_t x0, y0;
  uint32_t size;  // Power of two; block is [x0, x0+size) x [y0, y0+size).
};

enum class Overlap { kDisjoint, kPartial, kContained };

Overlap Classify(const Block& b, const ZRect& rect) {
  const uint64_t bx1 = static_cast<uint64_t>(b.x0) + b.size - 1;
  const uint64_t by1 = static_cast<uint64_t>(b.y0) + b.size - 1;
  if (bx1 < rect.min_x || b.x0 > rect.max_x || by1 < rect.min_y ||
      b.y0 > rect.max_y) {
    return Overlap::kDisjoint;
  }
  if (b.x0 >= rect.min_x && bx1 <= rect.max_x && b.y0 >= rect.min_y &&
      by1 <= rect.max_y) {
    return Overlap::kContained;
  }
  return Overlap::kPartial;
}

// A power-of-two-aligned block of side s covers s*s contiguous Z-codes.
ZInterval BlockInterval(const Block& b) {
  const uint64_t lo = MortonEncode2D(b.x0, b.y0);
  const uint64_t count = static_cast<uint64_t>(b.size) * b.size;
  return {lo, lo + count - 1};
}

}  // namespace

std::vector<ZInterval> DecomposeZRanges(const ZRect& rect,
                                        size_t max_ranges) {
  LIDX_CHECK(max_ranges >= 1);
  LIDX_CHECK(rect.min_x <= rect.max_x && rect.min_y <= rect.max_y);

  // Smallest power-of-two block enclosing the rectangle's coordinates.
  uint32_t side = 1;
  const uint32_t needed = std::max(rect.max_x, rect.max_y);
  while (side <= needed && side < (1u << 31)) side <<= 1;

  std::vector<ZInterval> result;
  // Depth-first in Z-order so emitted intervals come out sorted; `pending`
  // acts as an explicit stack holding blocks in reverse Z-order.
  std::vector<Block> stack;
  stack.push_back({0, 0, side});
  while (!stack.empty()) {
    const Block b = stack.back();
    stack.pop_back();
    const Overlap o = Classify(b, rect);
    if (o == Overlap::kDisjoint) continue;
    const bool must_emit =
        o == Overlap::kContained || b.size == 1 ||
        // Budget pressure: emitting this whole block (over-covering) keeps
        // the interval count bounded.
        result.size() + stack.size() + 4 > max_ranges;
    if (must_emit) {
      const ZInterval iv = BlockInterval(b);
      if (!result.empty() && result.back().hi + 1 == iv.lo) {
        result.back().hi = iv.hi;  // Coalesce adjacent intervals.
      } else {
        result.push_back(iv);
      }
      continue;
    }
    const uint32_t h = b.size / 2;
    // Push children in reverse Z-order so they pop in Z-order.
    stack.push_back({b.x0 + h, b.y0 + h, h});
    stack.push_back({b.x0, b.y0 + h, h});
    stack.push_back({b.x0 + h, b.y0, h});
    stack.push_back({b.x0, b.y0, h});
  }
  return result;
}

std::vector<ZInterval> DecomposeHilbertRanges(const ZRect& rect, int bits,
                                              size_t max_ranges) {
  LIDX_CHECK(max_ranges >= 1);
  LIDX_CHECK(bits >= 1 && bits <= 31);
  LIDX_CHECK(rect.min_x <= rect.max_x && rect.min_y <= rect.max_y);
  const uint32_t side = 1u << bits;
  LIDX_CHECK(rect.max_x < side && rect.max_y < side);

  // An aligned block of side s is one contiguous Hilbert stretch; its
  // start is the minimum corner encoding (the curve enters at a corner).
  const auto block_interval = [bits](const Block& b) -> ZInterval {
    const uint32_t x1 = b.x0 + b.size - 1;
    const uint32_t y1 = b.y0 + b.size - 1;
    uint64_t lo = HilbertEncode2D(b.x0, b.y0, bits);
    lo = std::min(lo, HilbertEncode2D(x1, b.y0, bits));
    lo = std::min(lo, HilbertEncode2D(b.x0, y1, bits));
    lo = std::min(lo, HilbertEncode2D(x1, y1, bits));
    const uint64_t count = static_cast<uint64_t>(b.size) * b.size;
    return {lo, lo + count - 1};
  };

  std::vector<ZInterval> result;
  std::vector<Block> stack;
  stack.push_back({0, 0, side});
  while (!stack.empty()) {
    const Block b = stack.back();
    stack.pop_back();
    const Overlap o = Classify(b, rect);
    if (o == Overlap::kDisjoint) continue;
    const bool must_emit =
        o == Overlap::kContained || b.size == 1 ||
        result.size() + stack.size() + 4 > max_ranges;
    if (must_emit) {
      result.push_back(block_interval(b));
      continue;
    }
    const uint32_t h = b.size / 2;
    stack.push_back({b.x0 + h, b.y0 + h, h});
    stack.push_back({b.x0, b.y0 + h, h});
    stack.push_back({b.x0 + h, b.y0, h});
    stack.push_back({b.x0, b.y0, h});
  }
  // Blocks were emitted in Z-scan order, not Hilbert order: sort and
  // coalesce adjacent intervals.
  std::sort(result.begin(), result.end(),
            [](const ZInterval& a, const ZInterval& b) { return a.lo < b.lo; });
  std::vector<ZInterval> merged;
  for (const ZInterval& iv : result) {
    if (!merged.empty() && merged.back().hi + 1 >= iv.lo) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace lidx::sfc
