#ifndef LIDX_ADAPT_SERVING_ADAPTER_H_
#define LIDX_ADAPT_SERVING_ADAPTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "adapt/controller.h"
#include "adapt/engine.h"
#include "models/drift.h"

namespace lidx {

// Adaptation bridge for the sharded serving layer: turns ShardedIndex's
// per-shard counters into controller signals and controller decisions back
// into serving-layer actions. The shard-level "error" is *probe depth*
// (read amplification): a healthy shard answers from its snapshot in ~3
// probes, while piled-up sealed buffers or a hot delta push the count up —
// the serving-side analogue of a learned model's position error.
//
//   signal                         decision     action
//   ------------------------------ ------------ ---------------------------
//   deep probes beyond capacity    kGrow        Rebalance(2x shards)
//   probe-depth drift (staleness)  kRetrain     RequestShardRebuild(shard)
//   traffic skew across shards     kRebalance   Rebalance(same shard count,
//                                               traffic-weighted cuts)
//   sustained calm                 kShrink      Rebalance(shards / 2)
//
// Tick() runs one sense -> decide -> act cycle. It is not thread-safe by
// itself; the AdaptationEngine serializes ticks (register via
// RegisterWith), which is the intended way to run it.
template <typename ShardedIndexT>
class ShardedAdaptor {
 public:
  struct Options {
    // target_error is interpreted in probe-depth units: active + delta +
    // snapshot model + last-mile is the healthy baseline.
    AdaptController::Options controller = [] {
      AdaptController::Options c;
      c.target_error = 4.0;
      c.inflation_factor = 2.0;
      return c;
    }();
    // Per-shard drift detection over window-mean probe depth.
    ModelDriftDetector::Options drift = [] {
      ModelDriftDetector::Options d;
      d.delta = 0.25;
      d.threshold = 32.0;
      d.min_observations = 4;
      return d;
    }();
    size_t min_shards = 1;
    size_t max_shards = 256;
  };

  explicit ShardedAdaptor(ShardedIndexT* index,
                          const Options& options = Options())
      : index_(index),
        options_(options),
        controller_(options.controller),
        bank_(index->num_shards(), options.drift) {}

  ShardedAdaptor(const ShardedAdaptor&) = delete;
  ShardedAdaptor& operator=(const ShardedAdaptor&) = delete;

  ~ShardedAdaptor() {
    if (engine_ != nullptr) engine_->Unregister(engine_id_);
  }

  // Registers this adaptor's Tick with the engine. Call at most once; the
  // destructor unregisters (and thereby waits out any in-flight tick).
  void RegisterWith(AdaptationEngine* engine) {
    engine_ = engine;
    engine_id_ = engine->Register("sharded-adaptor", [this] { Tick(); });
  }

  // One sense -> decide -> act cycle; returns the decision taken.
  AdaptDecision Tick() {
    using Snapshot = typename ShardedIndexT::ShardStatsSnapshot;
    Snapshot cur = index_->TakeShardStats();
    const size_t n = cur.shards.size();
    // A table swap (rebalance) restarts the counters and may change the
    // shard count; the old window and detectors describe segments that no
    // longer exist. Start a fresh window: the post-swap counters *are*
    // the deltas.
    const bool continuous = prev_valid_ &&
                            prev_.table_version == cur.table_version &&
                            prev_.shards.size() == n;
    if (!continuous && bank_.size() != std::max<size_t>(n, 1)) {
      bank_ = DriftDetectorBank(n, options_.drift);
    } else if (!continuous) {
      bank_.ResetAll();
    }
    std::vector<SegmentSignal> signals(n);
    for (size_t s = 0; s < n; ++s) {
      const auto& c = cur.shards[s];
      const uint64_t ops =
          continuous ? c.lookups - prev_.shards[s].lookups : c.lookups;
      const uint64_t depth = continuous
                                 ? c.probe_depth - prev_.shards[s].probe_depth
                                 : c.probe_depth;
      SegmentSignal& sig = signals[s];
      sig.ops = ops;
      if (ops > 0) {
        sig.mean_error =
            static_cast<double>(depth) / static_cast<double>(ops);
        // No per-shard quantile sketch: the window mean stands in for the
        // tail, so inflation_factor is calibrated against means.
        sig.tail_error = sig.mean_error;
        sig.drifted = bank_.Observe(s, sig.mean_error);
      } else {
        sig.drifted = bank_.drifted(s);
      }
    }
    prev_ = std::move(cur);
    prev_valid_ = true;

    AdaptDecision d = controller_.Decide(signals);
    Act(d, n);
    last_decision_ = d;
    ++ticks_;
    return d;
  }

  const AdaptDecision& last_decision() const { return last_decision_; }
  uint64_t ticks() const { return ticks_; }
  uint64_t actions_taken() const { return actions_taken_; }

 private:
  void Act(const AdaptDecision& d, size_t num_shards) {
    switch (d.action) {
      case AdaptDecision::Action::kGrow:
        ApplyRebalance(std::min(options_.max_shards, num_shards * 2));
        break;
      case AdaptDecision::Action::kShrink:
        ApplyRebalance(std::max(options_.min_shards, num_shards / 2));
        break;
      case AdaptDecision::Action::kRebalance:
        ApplyRebalance(num_shards);
        break;
      case AdaptDecision::Action::kRetrain:
        index_->RequestShardRebuild(d.segment);
        bank_.Reset(d.segment);
        ++actions_taken_;
        break;
      case AdaptDecision::Action::kNone:
        break;
    }
  }

  void ApplyRebalance(size_t new_num_shards) {
    // Rebalance is single-flight inside the index; a false return means
    // another rebalance is running and this window's evidence is stale
    // anyway. The table-version change resets our window on the next
    // tick.
    if (index_->Rebalance(new_num_shards)) {
      bank_.ResetAll();
      ++actions_taken_;
    }
  }

  ShardedIndexT* index_;
  Options options_;
  AdaptController controller_;
  DriftDetectorBank bank_;
  typename ShardedIndexT::ShardStatsSnapshot prev_;
  bool prev_valid_ = false;
  AdaptDecision last_decision_;
  uint64_t ticks_ = 0;
  uint64_t actions_taken_ = 0;
  AdaptationEngine* engine_ = nullptr;
  size_t engine_id_ = 0;
};

}  // namespace lidx

#endif  // LIDX_ADAPT_SERVING_ADAPTER_H_
