#ifndef LIDX_ADAPT_CONTROLLER_H_
#define LIDX_ADAPT_CONTROLLER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "models/drift.h"

namespace lidx {

// Decide layer of the adaptation subsystem. The controller is a pure,
// deterministic policy: it consumes one *window* of per-segment signals
// (produced by diffing ErrorMonitor snapshots) and emits a single action.
// It holds no references to any index — clients translate the action into
// their own mechanism (retrain, grow model budget, shard rebalance), which
// keeps the policy unit-testable without standing up an index.
//
// Signal classification (see docs/ADAPTATION.md for the full table):
//   error inflation  tail error far beyond the target      -> kGrow
//   drift            Page-Hinkley fired on a segment       -> kRetrain
//   skew             one segment takes most of the traffic -> kRebalance
//   sustained calm   errors well under target for a while  -> kShrink

// One window of observations for one segment.
struct SegmentSignal {
  uint64_t ops = 0;          // lookups observed this window
  double mean_error = 0.0;   // mean observed error
  double tail_error = 0.0;   // high-quantile observed error
  bool drifted = false;      // per-segment drift detector latched
};

struct AdaptDecision {
  enum class Action {
    kNone,       // healthy (or not enough evidence yet)
    kRetrain,    // re-fit at the current capacity
    kGrow,       // capacity is too small for the observed errors
    kShrink,     // capacity is larger than the workload needs
    kRebalance,  // traffic is skewed across segments; re-cut boundaries
  };

  Action action = Action::kNone;
  size_t segment = 0;        // the segment that triggered the action
  double evidence = 0.0;     // the measurement behind the decision
  const char* reason = "idle";
};

inline const char* AdaptActionName(AdaptDecision::Action a) {
  switch (a) {
    case AdaptDecision::Action::kNone: return "none";
    case AdaptDecision::Action::kRetrain: return "retrain";
    case AdaptDecision::Action::kGrow: return "grow";
    case AdaptDecision::Action::kShrink: return "shrink";
    case AdaptDecision::Action::kRebalance: return "rebalance";
  }
  return "unknown";
}

class AdaptController {
 public:
  struct Options {
    // The error budget per lookup the client is willing to pay (positions
    // for a learned model, probe depth for a layered store).
    double target_error = 32.0;
    // Tail error beyond inflation_factor * target_error means the current
    // capacity cannot represent the distribution: grow instead of retrain.
    double inflation_factor = 4.0;
    // Mean error below shrink_headroom * target_error counts as a calm
    // window; shrink_patience consecutive calm windows trigger kShrink.
    double shrink_headroom = 0.125;
    size_t shrink_patience = 4;
    // Hottest segment taking more than skew_ratio times its fair share of
    // a window's traffic counts as skew.
    double skew_ratio = 4.0;
    // Windows with fewer total ops than this carry no evidence.
    uint64_t min_window_ops = 256;
    bool allow_rebalance = true;
    bool allow_shrink = true;
  };

  // Two constructors instead of a default argument: `= Options()` in a
  // non-template class would need the nested NSDMIs before the enclosing
  // class is complete.
  AdaptController() : AdaptController(Options()) {}
  explicit AdaptController(const Options& options) : options_(options) {}

  // Classifies one window. Not thread-safe: the decide layer runs on a
  // single maintenance tick at a time (enforced by the client's
  // single-flight latch).
  AdaptDecision Decide(const std::vector<SegmentSignal>& segments) {
    AdaptDecision d;
    uint64_t total_ops = 0;
    uint64_t max_ops = 0;
    size_t hottest = 0;
    size_t worst = 0;
    double worst_tail = -1.0;
    bool any_drift = false;
    size_t drift_seg = 0;
    double weighted_mean = 0.0;
    for (size_t i = 0; i < segments.size(); ++i) {
      const SegmentSignal& s = segments[i];
      total_ops += s.ops;
      weighted_mean += s.mean_error * static_cast<double>(s.ops);
      if (s.ops > max_ops) {
        max_ops = s.ops;
        hottest = i;
      }
      if (s.ops > 0 && s.tail_error > worst_tail) {
        worst_tail = s.tail_error;
        worst = i;
      }
      if (s.drifted && !any_drift) {
        any_drift = true;
        drift_seg = i;
      }
    }
    if (total_ops < options_.min_window_ops) {
      calm_windows_ = 0;
      return d;  // kNone: no evidence this window
    }
    weighted_mean /= static_cast<double>(total_ops);

    // Priority order: capacity problems first (retraining at the same
    // capacity cannot fix them), then drift, then placement, then the
    // opportunistic shrink.
    if (worst_tail > options_.inflation_factor * options_.target_error) {
      calm_windows_ = 0;
      d.action = AdaptDecision::Action::kGrow;
      d.segment = worst;
      d.evidence = worst_tail;
      d.reason = "tail error beyond capacity";
      return d;
    }
    if (any_drift) {
      calm_windows_ = 0;
      d.action = AdaptDecision::Action::kRetrain;
      d.segment = drift_seg;
      d.evidence = segments[drift_seg].mean_error;
      d.reason = "drift detector latched";
      return d;
    }
    if (options_.allow_rebalance && segments.size() > 1) {
      const double fair =
          static_cast<double>(total_ops) /
          static_cast<double>(segments.size());
      const double ratio = static_cast<double>(max_ops) / fair;
      if (ratio > options_.skew_ratio) {
        calm_windows_ = 0;
        d.action = AdaptDecision::Action::kRebalance;
        d.segment = hottest;
        d.evidence = ratio;
        d.reason = "traffic skew";
        return d;
      }
    }
    if (options_.allow_shrink &&
        weighted_mean < options_.shrink_headroom * options_.target_error) {
      if (++calm_windows_ >= options_.shrink_patience) {
        calm_windows_ = 0;
        d.action = AdaptDecision::Action::kShrink;
        d.segment = worst;
        d.evidence = weighted_mean;
        d.reason = "sustained calm";
        return d;
      }
    } else {
      calm_windows_ = 0;
    }
    d.reason = "healthy";
    return d;
  }

  const Options& options() const { return options_; }
  size_t calm_windows() const { return calm_windows_; }

 private:
  Options options_;
  size_t calm_windows_ = 0;
};

// A bank of per-segment Page-Hinkley detectors, fed once per window with
// that window's mean error for the segment. Per-segment instances localise
// drift: a shift confined to one key region fires only that region's
// detector, so the controller knows *where* to act. Not thread-safe (same
// single-tick contract as AdaptController).
class DriftDetectorBank {
 public:
  DriftDetectorBank(size_t segments,
                    const ModelDriftDetector::Options& options)
      : detectors_(segments == 0 ? 1 : segments,
                   ModelDriftDetector(options)) {}

  size_t size() const { return detectors_.size(); }

  // Feeds one window-mean observation; returns whether the segment's
  // detector has latched drift.
  bool Observe(size_t segment, double mean_error) {
    LIDX_DCHECK(segment < detectors_.size());
    detectors_[segment].Observe(mean_error);
    return detectors_[segment].drifted();
  }

  bool drifted(size_t segment) const {
    LIDX_DCHECK(segment < detectors_.size());
    return detectors_[segment].drifted();
  }

  bool AnyDrifted() const {
    for (const auto& det : detectors_) {
      if (det.drifted()) return true;
    }
    return false;
  }

  void Reset(size_t segment) {
    LIDX_DCHECK(segment < detectors_.size());
    detectors_[segment].Reset();
  }

  void ResetAll() {
    for (auto& det : detectors_) det.Reset();
  }

  const ModelDriftDetector& detector(size_t segment) const {
    LIDX_DCHECK(segment < detectors_.size());
    return detectors_[segment];
  }

 private:
  std::vector<ModelDriftDetector> detectors_;
};

}  // namespace lidx

#endif  // LIDX_ADAPT_CONTROLLER_H_
