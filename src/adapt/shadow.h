#ifndef LIDX_ADAPT_SHADOW_H_
#define LIDX_ADAPT_SHADOW_H_

#include <atomic>

#include "common/epoch.h"

namespace lidx {

// Acting layer of the adaptation subsystem: an atomically published,
// epoch-retired pointer slot with a single-flight build latch. This is the
// publish-then-retire discipline of one_d/concurrent_index.h packaged as a
// reusable cell so every adaptation client swaps shadow-built structures
// the same way:
//
//   builder (pool worker)                reader (any thread)
//   ---------------------                -------------------
//   T* next = BuildShadow(...);          auto guard = epoch->Pin();
//   cell.Publish(next);                  const T* t = cell.Acquire();
//     = exchange(next, acq_rel)          ... lock-free probes on *t ...
//       + RetireDelete(old)              (guard drops; t unreachable)
//
// Readers never block and never see a torn structure: the exchange is the
// linearization point, and the old value is retired *after* the unlink so
// the three-epoch reclaimer (common/epoch.h) frees it only once every
// pinned reader has moved on.
//
// The single-flight latch (TryBeginBuild/EndBuild) serializes builders —
// adaptation wants at most one shadow build per cell in flight; a trigger
// that loses the race simply skips, the in-flight build already reacts to
// the same signal.
template <typename T>
class ShadowCell {
 public:
  explicit ShadowCell(EpochManager* epoch = &EpochManager::Shared())
      : epoch_(epoch) {}

  ~ShadowCell() {
    // lidx-lint: allow(epoch-guard): destructor — readers are gone by the
    // standard destruction contract, so the final value is freed directly.
    delete current_.load(std::memory_order_relaxed);
  }

  ShadowCell(const ShadowCell&) = delete;
  ShadowCell& operator=(const ShadowCell&) = delete;

  // Loads the current value. REQUIRES: the calling thread holds a live
  // epoch Guard on this cell's manager — the returned pointer is only
  // valid until that guard drops.
  const T* Acquire() const {
    // lidx-lint: allow(epoch-guard): contract read — caller holds the pin
    // (call sites are linted); AssertProtected validates it below.
    const T* p = current_.load(std::memory_order_acquire);
    epoch_->AssertProtected(p);
    return p;
  }

  // Publishes `next` (ownership transfers to the cell) and epoch-retires
  // the previous value. Safe from any thread; readers pinned before the
  // exchange keep the old value alive until their guards drop.
  void Publish(const T* next) {
    const T* old = current_.exchange(next, std::memory_order_acq_rel);
    if (old != nullptr) epoch_->RetireDelete(old);
  }

  // Single-flight latch: returns true if the caller won the right to run
  // the next shadow build and must later call EndBuild().
  bool TryBeginBuild() {
    return !build_inflight_.exchange(true, std::memory_order_acq_rel);
  }

  void EndBuild() { build_inflight_.store(false, std::memory_order_release); }

  bool BuildInFlight() const {
    return build_inflight_.load(std::memory_order_acquire);
  }

  EpochManager* epoch() const { return epoch_; }

 private:
  std::atomic<const T*> current_{nullptr};  // lidx: epoch-protected
  std::atomic<bool> build_inflight_{false};
  EpochManager* epoch_;
};

}  // namespace lidx

#endif  // LIDX_ADAPT_SHADOW_H_
