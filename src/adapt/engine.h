#ifndef LIDX_ADAPT_ENGINE_H_
#define LIDX_ADAPT_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/thread_annotations.h"

namespace lidx {

// The background service that closes the adaptation loop. Clients register
// a tick callback (their sense -> decide -> act cycle: diff monitor
// snapshots, run the controller, kick off shadow builds); the engine runs
// every registered callback periodically on ThreadPool::Shared() workers.
//
// Threading model:
//  * A dedicated timer thread does nothing but wait out the period and
//    submit one tick task to the pool — it never runs client code, so it
//    cannot stall the schedule, and it never occupies a pool worker while
//    idle.
//  * Tick tasks are single-flight: if the previous tick is still running
//    (a long shadow build), the timer skips instead of queueing a pileup.
//  * TickNow() runs one synchronous tick on the caller — the deterministic
//    spelling used by tests and benchmarks.
//
// Contracts: callbacks must not call Register/Unregister/Stop from inside
// a tick (the tick holds the registration mutex), and — like everything
// pool-reachable — must never block on pool futures (lidx-lint
// pool-blocking-get). Unregister returns only after any in-flight tick has
// finished, so a client may destroy itself immediately afterwards.
class AdaptationEngine {
 public:
  struct Options {
    std::chrono::milliseconds tick_period{100};
    ThreadPool* pool = nullptr;  // Defaults to ThreadPool::Shared().
  };

  struct Stats {
    uint64_t ticks = 0;           // Tick cycles that ran (timer + TickNow).
    uint64_t callback_runs = 0;   // Individual client callbacks executed.
    uint64_t skipped_ticks = 0;   // Timer fires coalesced into a busy tick.
  };

  // Two constructors instead of a default argument: `= Options()` in a
  // non-template class would need the nested NSDMIs before the enclosing
  // class is complete.
  AdaptationEngine() : AdaptationEngine(Options()) {}
  explicit AdaptationEngine(const Options& options)
      : options_(options),
        pool_(options.pool != nullptr ? options.pool
                                      : &ThreadPool::Shared()) {}

  ~AdaptationEngine() { Stop(); }

  AdaptationEngine(const AdaptationEngine&) = delete;
  AdaptationEngine& operator=(const AdaptationEngine&) = delete;

  // Registers a client tick callback; returns a handle for Unregister.
  // The name shows up nowhere hot — it exists for debugging and stats.
  size_t Register(std::string name, std::function<void()> tick) {
    MutexLock lock(mu_);
    const size_t id = next_id_++;
    clients_.push_back(Client{id, std::move(name), std::move(tick)});
    return id;
  }

  // Removes a client. Blocks until any in-flight tick has drained, so the
  // callback's captures may be destroyed as soon as this returns.
  void Unregister(size_t id) {
    MutexLock lock(mu_);
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].id == id) {
        clients_.erase(clients_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }

  // Starts the periodic service. Idempotent.
  void Start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    timer_ = std::thread([this] { TimerLoop(); });
  }

  // Stops the timer and waits for the in-flight tick (if any) to finish.
  // Idempotent; also called by the destructor.
  void Stop() {
    {
      MutexLock lock(timer_mu_);
      if (!running_.load(std::memory_order_relaxed)) return;
      running_.store(false, std::memory_order_release);
      timer_cv_.NotifyAll();
    }
    if (timer_.joinable()) timer_.join();
    // The timer is gone but its last submitted tick may still be running
    // on a pool worker; wait it out so Stop() is a full barrier.
    while (tick_inflight_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Runs one tick synchronously on the calling thread. Serializes against
  // the background tick via the same single-flight latch.
  void TickNow() {
    while (tick_inflight_.exchange(true, std::memory_order_acq_rel)) {
      std::this_thread::yield();
    }
    RunTick();
    tick_inflight_.store(false, std::memory_order_release);
  }

  Stats GetStats() const {
    Stats s;
    s.ticks = ticks_.load(std::memory_order_relaxed);
    s.callback_runs = callback_runs_.load(std::memory_order_relaxed);
    s.skipped_ticks = skipped_ticks_.load(std::memory_order_relaxed);
    return s;
  }

  size_t NumClients() const {
    MutexLock lock(mu_);
    return clients_.size();
  }

 private:
  struct Client {
    size_t id;
    std::string name;
    std::function<void()> tick;
  };

  void TimerLoop() {
    for (;;) {
      {
        MutexLock lock(timer_mu_);
        if (running_.load(std::memory_order_acquire)) {
          timer_cv_.WaitFor(timer_mu_, options_.tick_period);
        }
        if (!running_.load(std::memory_order_acquire)) return;
      }
      if (tick_inflight_.exchange(true, std::memory_order_acq_rel)) {
        // Previous tick still running (long shadow build): coalesce.
        skipped_ticks_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      pool_->Submit([this] {
        RunTick();
        tick_inflight_.store(false, std::memory_order_release);
      });
    }
  }

  // REQUIRES: tick_inflight_ held by the caller.
  void RunTick() {
    MutexLock lock(mu_);
    ticks_.fetch_add(1, std::memory_order_relaxed);
    for (const Client& client : clients_) {
      client.tick();
      callback_runs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Options options_;
  ThreadPool* pool_;

  mutable Mutex mu_;
  std::vector<Client> clients_ LIDX_GUARDED_BY(mu_);
  size_t next_id_ LIDX_GUARDED_BY(mu_) = 1;

  Mutex timer_mu_;
  CondVar timer_cv_;
  std::thread timer_;

  std::atomic<bool> running_{false};
  std::atomic<bool> tick_inflight_{false};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> callback_runs_{0};
  std::atomic<uint64_t> skipped_ticks_{0};
};

}  // namespace lidx

#endif  // LIDX_ADAPT_ENGINE_H_
