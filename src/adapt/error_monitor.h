#ifndef LIDX_ADAPT_ERROR_MONITOR_H_
#define LIDX_ADAPT_ERROR_MONITOR_H_

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace lidx {

// Sensing layer of the adaptation subsystem (tutorial §6.3: observe the
// live workload, not the training set). An ErrorMonitor is a bank of
// per-segment counters fed from last-mile search paths: each observation is
// the *observed* prediction error of one lookup (|predicted - actual|
// positions for a learned model, read-amplification for a layered store).
//
// Design constraints, in order:
//  * The record path runs on every lookup of every reader thread, so each
//    segment's counters live on their own cache line (no false sharing with
//    neighbours) and all updates are relaxed atomics — the monitor imposes
//    no ordering on the structure it watches.
//  * Zero cost when disabled: `Record` is a single predictable branch.
//  * Lossy by design. Counters are statistically consistent, not
//    linearizable: a snapshot taken concurrently with records may split a
//    single observation across two windows. The decide layer only ever
//    looks at window aggregates, where this is noise.
//
// Errors are bucketed into a log2 histogram so the controller can read
// error quantiles (for ε / fanout tuning) without the monitor storing
// samples.
class ErrorMonitor {
 public:
  static constexpr size_t kHistogramBuckets = 16;

  struct SegmentSnapshot {
    uint64_t ops = 0;
    uint64_t error_sum = 0;
    uint64_t error_max = 0;
    std::array<uint64_t, kHistogramBuckets> histogram{};

    double MeanError() const {
      return ops == 0 ? 0.0
                      : static_cast<double>(error_sum) /
                            static_cast<double>(ops);
    }

    // Upper bound of the smallest histogram bucket that covers quantile
    // `q` of the observations. The top bucket is clamped to the observed
    // max so a single outlier does not report as 2^15.
    double QuantileError(double q) const {
      if (ops == 0) return 0.0;
      const uint64_t rank = static_cast<uint64_t>(
          std::ceil(q * static_cast<double>(ops)));
      uint64_t seen = 0;
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        seen += histogram[b];
        if (seen >= rank) {
          const uint64_t upper = b == 0 ? 1 : (uint64_t{1} << b);
          return static_cast<double>(std::min(upper, std::max<uint64_t>(
                                                         error_max, 1)));
        }
      }
      return static_cast<double>(error_max);
    }
  };

  struct Snapshot {
    std::vector<SegmentSnapshot> segments;

    uint64_t TotalOps() const {
      uint64_t total = 0;
      for (const auto& s : segments) total += s.ops;
      return total;
    }

    // Segment-wise difference against an earlier snapshot of the same
    // monitor — the controller reasons about one window, not all history.
    // Counters are monotone between resets, so saturating subtraction
    // also absorbs a reset that happened in between.
    Snapshot DeltaSince(const Snapshot& prev) const {
      Snapshot out = *this;
      const size_t common = std::min(out.segments.size(),
                                     prev.segments.size());
      for (size_t i = 0; i < common; ++i) {
        SegmentSnapshot& cur = out.segments[i];
        const SegmentSnapshot& old = prev.segments[i];
        if (cur.ops < old.ops) continue;  // reset in between: keep cur as-is
        cur.ops -= old.ops;
        cur.error_sum -= std::min(cur.error_sum, old.error_sum);
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
          cur.histogram[b] -= std::min(cur.histogram[b], old.histogram[b]);
        }
        // error_max is a high-water mark, not a window statistic; leave it.
      }
      return out;
    }
  };

  explicit ErrorMonitor(size_t segments, bool enabled = true)
      : num_segments_(segments == 0 ? 1 : segments),
        enabled_(enabled),
        slots_(new Slot[num_segments_]) {}

  ErrorMonitor(const ErrorMonitor&) = delete;
  ErrorMonitor& operator=(const ErrorMonitor&) = delete;

  bool enabled() const { return enabled_; }
  size_t segments() const { return num_segments_; }

  // Maps a position in [0, n) onto a monitor segment. Convenience for
  // clients whose natural segment count (e.g. RMI leaf models) exceeds the
  // monitor's resolution.
  size_t SegmentOf(size_t position, size_t n) const {
    if (n == 0) return 0;
    const size_t seg = position * num_segments_ / n;
    return seg < num_segments_ ? seg : num_segments_ - 1;
  }

  // Records one observation. Callable concurrently from any number of
  // reader threads; `const` because sensing is logically read-only for the
  // owner of the monitor.
  void Record(size_t segment, double error) const {
    if (LIDX_LIKELY(!enabled_)) return;
    LIDX_DCHECK(segment < num_segments_);
    Slot& slot = slots_[segment];
    const uint64_t e =
        error <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(error));
    slot.ops.fetch_add(1, std::memory_order_relaxed);
    slot.error_sum.fetch_add(e, std::memory_order_relaxed);
    slot.histogram[BucketOf(e)].fetch_add(1, std::memory_order_relaxed);
    uint64_t prev_max = slot.error_max.load(std::memory_order_relaxed);
    while (e > prev_max &&
           !slot.error_max.compare_exchange_weak(
               prev_max, e, std::memory_order_relaxed)) {
    }
  }

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    snap.segments.resize(num_segments_);
    for (size_t i = 0; i < num_segments_; ++i) {
      const Slot& slot = slots_[i];
      SegmentSnapshot& out = snap.segments[i];
      out.ops = slot.ops.load(std::memory_order_relaxed);
      out.error_sum = slot.error_sum.load(std::memory_order_relaxed);
      out.error_max = slot.error_max.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        out.histogram[b] = slot.histogram[b].load(std::memory_order_relaxed);
      }
    }
    return snap;
  }

  // Zeroes every counter. Racy against concurrent Record by design — a few
  // observations land in the old or new era; both are statistically fine.
  void Reset() {
    for (size_t i = 0; i < num_segments_; ++i) {
      Slot& slot = slots_[i];
      slot.ops.store(0, std::memory_order_relaxed);
      slot.error_sum.store(0, std::memory_order_relaxed);
      slot.error_max.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        slot.histogram[b].store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  // One cache line (and change) per segment: the hot triple shares a line,
  // the histogram spills onto its own lines, and alignas keeps neighbouring
  // segments from sharing either.
  struct alignas(64) Slot {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> error_sum{0};
    std::atomic<uint64_t> error_max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> histogram{};
  };

  static size_t BucketOf(uint64_t e) {
    if (e == 0) return 0;
    const size_t b = static_cast<size_t>(std::bit_width(e));
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
  }

  size_t num_segments_;
  bool enabled_;
  // `Record` is const (stats are not logical state); the counters mutate.
  mutable std::unique_ptr<Slot[]> slots_;
};

}  // namespace lidx

#endif  // LIDX_ADAPT_ERROR_MONITOR_H_
