// E10 — Mutable multi-dimensional indexes under inserts.
//
// Tutorial claim (§5.4, §5.5): mutable learned spatial indexes (LISA's
// learned shards with in-place inserts) sustain insert throughput close to
// traditional structures while keeping learned-query performance; the
// R-tree pays split/rebalance costs per insert. Expected shape: grid wins
// raw inserts (hashing), LISA lands between grid and R-tree, and mixed
// workloads favor structures with cheap point queries.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "multi_d/lisa.h"
#include "spatial/grid.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"

namespace lidx {
namespace {

constexpr size_t kInitialPoints = 200'000;
constexpr size_t kNumInserts = 500'000;
constexpr size_t kNumMixedOps = 400'000;

template <typename InsertFn, typename QueryFn>
void Run(TablePrinter* table, const std::string& name,
         const std::vector<Point2D>& inserts,
         const std::vector<Point2D>& existing, InsertFn insert,
         QueryFn query) {
  // Phase 1: insert-only throughput.
  Timer t1;
  for (uint32_t i = 0; i < inserts.size(); ++i) {
    insert(inserts[i], kInitialPoints + i);
  }
  const double insert_kops =
      static_cast<double>(inserts.size()) / t1.ElapsedSeconds() / 1e3;

  // Phase 2: 50/50 insert + point query.
  Rng rng(111);
  uint64_t sink = 0;
  Timer t2;
  for (size_t i = 0; i < kNumMixedOps; ++i) {
    if (i % 2 == 0) {
      const Point2D p{rng.NextDouble(), rng.NextDouble()};
      insert(p, kInitialPoints + kNumInserts + i);
    } else {
      sink += query(existing[rng.NextBounded(existing.size())]);
    }
  }
  const double mixed_kops =
      static_cast<double>(kNumMixedOps) / t2.ElapsedSeconds() / 1e3;
  DoNotOptimize(sink);
  table->AddRow({name, TablePrinter::FormatDouble(insert_kops, 0),
                 TablePrinter::FormatDouble(mixed_kops, 0)});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E10: mutable 2-D indexes (200K preload, 500K inserts, 400K mixed)",
      "learned shards (LISA) sustain inserts near traditional structures");

  const auto initial = GeneratePoints(PointDistribution::kGaussianClusters,
                                      kInitialPoints, 1212);
  const auto inserts =
      GeneratePoints(PointDistribution::kGaussianClusters, kNumInserts, 1313);

  TablePrinter table({"index", "insert Kops/s", "mixed Kops/s"});
  {
    RTree index;
    index.BulkLoad(initial);
    Run(&table, "r-tree", inserts, initial,
        [&](const Point2D& p, uint32_t id) { index.Insert(p, id); },
        [&](const Point2D& p) { return index.FindExact(p).size(); });
  }
  {
    QuadTree index;
    index.Build(initial);
    Run(&table, "quadtree", inserts, initial,
        [&](const Point2D& p, uint32_t id) { index.Insert(p, id); },
        [&](const Point2D& p) { return index.FindExact(p).size(); });
  }
  {
    UniformGrid index(256);
    index.Build(initial);
    Run(&table, "uniform-grid", inserts, initial,
        [&](const Point2D& p, uint32_t id) { index.Insert(p, id); },
        [&](const Point2D& p) { return index.FindExact(p).size(); });
  }
  {
    LisaIndex index;
    index.Build(initial);
    Run(&table, "lisa (learned)", inserts, initial,
        [&](const Point2D& p, uint32_t id) { index.Insert(p, id); },
        [&](const Point2D& p) { return index.FindExact(p).size(); });
  }
  table.Print();
  return 0;
}
