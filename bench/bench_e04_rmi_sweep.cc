// E4 — RMI model-budget sweep.
//
// Tutorial claim (§4.3, §6.2): the model budget is the RMI's only knob —
// more stage-2 models shrink per-model error (faster last-mile search) at
// the cost of a bigger model and longer training; unlike the PGM there is
// no worst-case guarantee, so the max error can stay large on hard
// distributions no matter the budget. Expected shape: latency falls with
// model count until the model stops fitting in cache; on the adversarial
// set the max error window barely improves.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/rmi.h"

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E4: RMI stage-2 model count sweep (1M keys)",
      "model budget trades build time and size against lookup latency; no "
      "worst-case bound");

  constexpr size_t kNumKeys = 1'000'000;
  constexpr size_t kNumLookups = 200'000;

  TablePrinter table({"dist", "models", "build_ms", "model_size", "mean_err",
                      "max_err", "ns/lookup"});
  for (KeyDistribution dist :
       {KeyDistribution::kLognormal, KeyDistribution::kAdversarial}) {
    const auto keys = GenerateKeys(dist, kNumKeys, 6006);
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    const auto lookups = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 17);

    for (size_t models = 64; models <= (1u << 18); models *= 8) {
      Rmi<uint64_t, uint64_t> index;
      Rmi<uint64_t, uint64_t>::Options opts;
      opts.num_models = models;
      const double build_ms =
          bench::MeasureMs([&] { index.Build(keys, values, opts); });
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      DoNotOptimize(sink);
      table.AddRow({KeyDistributionName(dist),
                    TablePrinter::FormatCount(models),
                    TablePrinter::FormatDouble(build_ms, 1),
                    TablePrinter::FormatBytes(index.ModelSizeBytes()),
                    TablePrinter::FormatDouble(index.MeanErrorWindow(), 1),
                    TablePrinter::FormatCount(index.MaxErrorWindow()),
                    TablePrinter::FormatDouble(ns, 0)});
    }
  }
  table.Print();
  return 0;
}
