// E5 — Learned Bloom filters vs the standard Bloom filter.
//
// Tutorial claim (§4.3, §6.6): when the key set has learnable structure, a
// classifier + small backup filter reaches a lower false-positive rate at
// equal space (or equal FPR at less space) than a standard Bloom filter;
// sandwiching adds a front filter that screens negatives before the
// classifier can admit them. On unlearnable (point-mass clustered) keys
// the learned filter degrades to backup-filter performance. False
// negatives must be zero in every configuration.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/bloom.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/learned_bloom.h"

namespace lidx {
namespace {

constexpr size_t kNumMembers = 200'000;

struct Problem {
  std::string name;
  std::vector<uint64_t> members;
  std::vector<uint64_t> train_negatives;
  std::vector<uint64_t> test_negatives;
};

// Learnable: members occupy 10 dense regular bands, negatives in the gaps.
Problem BandedProblem() {
  Problem problem;
  problem.name = "banded (learnable)";
  Rng rng(7007);
  const uint64_t unit = 1ull << 36;
  for (size_t i = 0; i < kNumMembers; ++i) {
    problem.members.push_back(rng.NextBounded(10) * 2 * unit +
                              rng.NextBounded(unit * 8 / 10));
    problem.train_negatives.push_back(
        (rng.NextBounded(10) * 2 + 1) * unit + rng.NextBounded(unit * 8 / 10));
    problem.test_negatives.push_back(
        (rng.NextBounded(10) * 2 + 1) * unit + rng.NextBounded(unit * 8 / 10));
  }
  std::sort(problem.members.begin(), problem.members.end());
  problem.members.erase(
      std::unique(problem.members.begin(), problem.members.end()),
      problem.members.end());
  return problem;
}

// Unlearnable: point-mass clusters; negatives uniform.
Problem ClusteredProblem() {
  Problem problem;
  problem.name = "clustered (hard)";
  problem.members = GenerateKeys(KeyDistribution::kClustered, kNumMembers,
                                 8008);
  const auto raw =
      GenerateKeys(KeyDistribution::kUniform, kNumMembers, 9009);
  for (size_t i = 0; i < raw.size(); ++i) {
    if (std::binary_search(problem.members.begin(), problem.members.end(),
                           raw[i])) {
      continue;
    }
    (i % 2 ? problem.train_negatives : problem.test_negatives)
        .push_back(raw[i]);
  }
  return problem;
}

template <typename Filter>
void Report(TablePrinter* table, const Problem& problem,
            const std::string& name, const Filter& filter, size_t bytes) {
  size_t fn = 0;
  for (uint64_t k : problem.members) fn += !filter.MayContain(k);
  size_t fp = 0;
  for (uint64_t k : problem.test_negatives) fp += filter.MayContain(k);
  uint64_t sink = 0;
  const double ns = bench::MeasureNsPerOp(
      problem.test_negatives.size(),
      [&](size_t i) { sink += filter.MayContain(problem.test_negatives[i]); });
  DoNotOptimize(sink);
  const double fpr = static_cast<double>(fp) /
                     static_cast<double>(problem.test_negatives.size());
  table->AddRow({problem.name, name, TablePrinter::FormatBytes(bytes),
                 TablePrinter::FormatDouble(100.0 * fpr, 3) + "%",
                 std::to_string(fn), TablePrinter::FormatDouble(ns, 0)});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E5: learned Bloom filters (200K members)",
      "learned filters cut FPR at equal space on learnable key sets; "
      "sandwiching helps; zero false negatives always");

  TablePrinter table(
      {"keyset", "filter", "size", "fpr", "false_negs", "ns/query"});
  for (Problem problem : {BandedProblem(), ClusteredProblem()}) {
    // Learned filter and its sandwiched variant.
    LearnedBloomFilter lbf;
    LearnedBloomFilter::Options lopts;
    lopts.backup_bits_per_key = 8.0;
    lbf.Build(problem.members, problem.train_negatives, lopts);
    SandwichedLearnedBloomFilter slbf;
    SandwichedLearnedBloomFilter::Options sopts;
    sopts.learned.backup_bits_per_key = 6.0;
    sopts.initial_bits_per_key = 3.0;
    slbf.Build(problem.members, problem.train_negatives, sopts);

    // Standard filters: one matched to the learned filter's byte budget,
    // one at the conventional 10 bits/key.
    const double equal_bits =
        static_cast<double>(lbf.SizeBytes()) * 8.0 /
        static_cast<double>(problem.members.size());
    BloomFilter equal_space(problem.members.size(), equal_bits);
    BloomFilter ten_bits(problem.members.size(), 10.0);
    for (uint64_t k : problem.members) {
      equal_space.Add(k);
      ten_bits.Add(k);
    }

    Report(&table, problem, "bloom@equal-space", equal_space,
           equal_space.SizeBytes());
    Report(&table, problem, "bloom@10bpk", ten_bits, ten_bits.SizeBytes());
    Report(&table, problem, "learned-bloom", lbf, lbf.SizeBytes());
    Report(&table, problem, "sandwiched-lbf", slbf, slbf.SizeBytes());
  }
  table.Print();
  return 0;
}
