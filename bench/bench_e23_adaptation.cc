// E23 — Self-driving adaptation: drift-triggered background retraining
// with epoch-protected shadow swaps (src/adapt/).
//
// Tutorial claim (§6.3): a deployed learned index must notice when its
// model no longer fits the live workload and retrain itself — without an
// operator and without blocking lookups. Two legs, one per adaptation
// client:
//
//  * Leg A (model error): an under-provisioned AdaptiveRmi observes its
//    own lookup errors; the controller's kGrow decisions retrain shadow
//    models at larger budgets on pool workers until the error bound fits.
//    The no-adaptation baseline serves the same workload on the same
//    frozen starting model and stays degraded.
//  * Leg B (traffic skew): a ShardedIndex serving a skewed stream routes
//    ~all lookups to one shard. The ShardedAdaptor senses the imbalance
//    from per-shard counters and re-cuts boundaries traffic-weighted; the
//    baseline keeps its data-quantile boundaries and stays imbalanced.
//
// What to look for:
//  * Leg A: observed mean / p99 error collapses by >= 2x within a few
//    maintenance rounds; the baseline's error does not move.
//  * Leg B: the hottest shard's traffic share drops from ~num_shards x
//    fair to ~1-2x fair after one rebalance tick; baseline stays at the
//    initial skew.
//
// Usage: bench_e23_adaptation [n_keys] [ops_per_phase] [rounds]
// Defaults: 400k keys, 150k ops/phase, 6 rounds. Self-check assertions
// are enforced when n_keys >= 200k.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "adapt/serving_adapter.h"
#include "bench_util.h"
#include "common/macros.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/adaptive_rmi.h"
#include "one_d/dynamic_pgm.h"
#include "serving/sharded_index.h"

namespace lidx {
namespace {

using bench::JsonField;
using bench::JsonRow;

struct Config {
  size_t n_keys = 400'000;
  size_t ops_per_phase = 150'000;
  size_t rounds = 6;
};

// Collapses a monitor snapshot into one aggregate segment so mean / p99
// can be read across the whole key space.
ErrorMonitor::SegmentSnapshot Aggregate(const ErrorMonitor::Snapshot& snap) {
  ErrorMonitor::SegmentSnapshot all;
  for (const auto& seg : snap.segments) {
    all.ops += seg.ops;
    all.error_sum += seg.error_sum;
    all.error_max = std::max(all.error_max, seg.error_max);
    for (size_t b = 0; b < ErrorMonitor::kHistogramBuckets; ++b) {
      all.histogram[b] += seg.histogram[b];
    }
  }
  return all;
}

// ---- Leg A: AdaptiveRmi model-error recovery ----------------------------

struct PhaseStats {
  double mean_error = 0.0;
  double p99_error = 0.0;
  double mops = 0.0;
  size_t budget = 0;
  size_t rebuilds = 0;
};

PhaseStats RunRmiPhase(AdaptiveRmi<uint64_t, uint64_t>* index,
                       ShiftingStream* stream, size_t ops) {
  Timer timer;
  uint64_t sink = 0;
  for (size_t i = 0; i < ops; ++i) {
    sink += index->Find(stream->Next()).value_or(0);
  }
  const double seconds = timer.ElapsedSeconds();
  DoNotOptimize(sink);
  // Let in-flight background maintenance settle so the phase report is a
  // stable point (the lookups above never waited on it).
  index->WaitForMaintenance();
  const auto window = Aggregate(index->ObservedErrors());
  PhaseStats out;
  out.mean_error = window.MeanError();
  out.p99_error = window.QuantileError(0.99);
  out.mops = static_cast<double>(ops) / seconds / 1e6;
  out.budget = index->current_model_budget();
  out.rebuilds = index->rebuilds();
  return out;
}

std::vector<JsonRow> RunLegA(const Config& config) {
  bench::PrintHeader(
      "E23a — drift-triggered model retraining (AdaptiveRmi)",
      "background kGrow retraining collapses observed error bounds; the "
      "frozen baseline stays degraded");

  const auto keys =
      GenerateKeys(KeyDistribution::kClustered, config.n_keys, 2023);
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = i;

  // Deliberately under-provisioned: 4 stage-2 models for a clustered key
  // set this size guarantees inflated errors the controller must fix.
  AdaptiveRmi<uint64_t, uint64_t>::Options adapted_opts;
  adapted_opts.rmi.num_models = 4;
  adapted_opts.max_model_budget = size_t{1} << 14;
  AdaptiveRmi<uint64_t, uint64_t> adapted(adapted_opts);
  adapted.BulkLoad(keys, values);

  auto frozen_opts = adapted_opts;
  frozen_opts.auto_maintain = false;  // The no-adaptation baseline.
  AdaptiveRmi<uint64_t, uint64_t> frozen(frozen_opts);
  frozen.BulkLoad(keys, values);

  // The query distribution steps between thirds of the key space — the
  // shift a drift detector has to ride through without false-resetting.
  ShiftingStream::Options sopts;
  sopts.phases = {{0.0, 0.34, 0.6}, {0.33, 0.67, 0.6}, {0.66, 1.0, 0.6}};
  sopts.ops_per_phase = config.ops_per_phase;
  ShiftingStream adapted_stream(keys, sopts);
  ShiftingStream frozen_stream(keys, sopts);

  std::printf("%-7s %12s %12s %12s %10s %10s   %s\n", "phase", "mean_err",
              "p99_err", "Mops/s", "budget", "rebuilds", "variant");
  std::vector<JsonRow> rows;
  PhaseStats last_adapted;
  PhaseStats last_frozen;
  const size_t phases = sopts.phases.size() + 1;  // Wrap once: 4 windows.
  for (size_t p = 0; p < phases; ++p) {
    const PhaseStats a =
        RunRmiPhase(&adapted, &adapted_stream, config.ops_per_phase);
    const PhaseStats f =
        RunRmiPhase(&frozen, &frozen_stream, config.ops_per_phase);
    last_adapted = a;
    last_frozen = f;
    std::printf("%-7zu %12.1f %12.1f %12.2f %10zu %10zu   adapted\n", p,
                a.mean_error, a.p99_error, a.mops, a.budget, a.rebuilds);
    std::printf("%-7zu %12.1f %12.1f %12.2f %10zu %10zu   frozen\n", p,
                f.mean_error, f.p99_error, f.mops, f.budget, f.rebuilds);
    for (const auto* variant : {"adapted", "frozen"}) {
      const PhaseStats& s = *variant == 'a' ? a : f;
      rows.push_back({JsonField::Str("leg", "rmi_error"),
                      JsonField::Str("variant", variant),
                      JsonField::Num("phase", p),
                      JsonField::Num("mean_error", s.mean_error),
                      JsonField::Num("p99_error", s.p99_error),
                      JsonField::Num("mops", s.mops),
                      JsonField::Num("model_budget", s.budget),
                      JsonField::Num("rebuilds", s.rebuilds)});
    }
  }

  if (config.n_keys >= 200'000) {
    // Adaptation typically converges within the first phase, so "recovered"
    // is measured against the frozen baseline — the same starting model
    // serving the same stream without the adaptation loop.
    LIDX_CHECK(last_adapted.rebuilds >= 1);
    LIDX_CHECK(last_adapted.budget > 4);
    LIDX_CHECK(last_adapted.mean_error * 2.0 <= last_frozen.mean_error);
    LIDX_CHECK(last_adapted.p99_error * 2.0 <= last_frozen.p99_error);
    std::printf("[check] adaptation recovered the error bound; baseline "
                "stayed degraded\n");
  }
  return rows;
}

// ---- Leg B: ShardedIndex skew recovery ----------------------------------

using Serving = ShardedIndex<DynamicPgm<uint64_t, uint64_t>>;

struct RoundStats {
  double imbalance = 0.0;  // Hottest shard's multiple of its fair share.
  double mops = 0.0;
};

RoundStats RunServingRound(Serving* index, ShiftingStream* stream,
                           size_t ops) {
  const auto before = index->TakeShardStats();
  Timer timer;
  uint64_t sink = 0;
  for (size_t i = 0; i < ops; ++i) {
    sink += index->Find(stream->Next()).value_or(0);
  }
  const double seconds = timer.ElapsedSeconds();
  DoNotOptimize(sink);
  const auto after = index->TakeShardStats();
  RoundStats out;
  out.mops = static_cast<double>(ops) / seconds / 1e6;
  // Counters restart when a rebalance swaps the table; both snapshots here
  // bracket lookups only (rebalances happen between rounds), so the delta
  // is valid whenever the version matches and raw counts are right after
  // a swap.
  const bool continuous = before.table_version == after.table_version &&
                          before.shards.size() == after.shards.size();
  uint64_t total = 0;
  uint64_t max_shard = 0;
  for (size_t s = 0; s < after.shards.size(); ++s) {
    const uint64_t delta =
        continuous ? after.shards[s].lookups - before.shards[s].lookups
                   : after.shards[s].lookups;
    total += delta;
    max_shard = std::max(max_shard, delta);
  }
  if (total > 0) {
    out.imbalance = static_cast<double>(max_shard) /
                    (static_cast<double>(total) /
                     static_cast<double>(after.shards.size()));
  }
  return out;
}

std::vector<JsonRow> RunLegB(const Config& config) {
  bench::PrintHeader(
      "E23b — skew-triggered shard rebalance (ShardedIndex)",
      "traffic-weighted boundary re-cuts spread a hot range across shards; "
      "the baseline keeps routing it to one");

  const auto keys =
      GenerateKeys(KeyDistribution::kLognormal, config.n_keys, 2024);
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = i;

  Serving::Options sopts;
  sopts.num_shards = 16;
  sopts.collect_shard_stats = true;
  Serving adapted(sopts);
  adapted.BulkLoad(keys, values);
  Serving baseline(sopts);
  baseline.BulkLoad(keys, values);
  ShardedAdaptor<Serving> adaptor(&adapted);

  // All lookups inside one sixteenth of the key space, zipf-skewed.
  ShiftingStream::Options wopts;
  wopts.phases = {{0.0, 1.0 / 16.0, 0.8}};
  wopts.ops_per_phase = config.ops_per_phase;
  ShiftingStream adapted_stream(keys, wopts);
  ShiftingStream baseline_stream(keys, wopts);

  const size_t ops_per_round =
      std::max<size_t>(1, config.ops_per_phase / config.rounds);
  std::printf("%-7s %14s %12s %14s %12s %12s\n", "round", "imbal(adapted)",
              "Mops(a)", "imbal(base)", "Mops(b)", "rebalances");
  std::vector<JsonRow> rows;
  RoundStats last_adapted;
  RoundStats last_baseline;
  for (size_t r = 0; r < config.rounds; ++r) {
    const RoundStats a =
        RunServingRound(&adapted, &adapted_stream, ops_per_round);
    const RoundStats b =
        RunServingRound(&baseline, &baseline_stream, ops_per_round);
    last_adapted = a;
    last_baseline = b;
    const uint64_t rebalances = adapted.GetStats().rebalances;
    std::printf("%-7zu %14.2f %12.2f %14.2f %12.2f %12llu\n", r, a.imbalance,
                a.mops, b.imbalance, b.mops,
                static_cast<unsigned long long>(rebalances));
    rows.push_back({JsonField::Str("leg", "sharded_skew"),
                    JsonField::Num("round", r),
                    JsonField::Num("imbalance_adapted", a.imbalance),
                    JsonField::Num("imbalance_baseline", b.imbalance),
                    JsonField::Num("mops_adapted", a.mops),
                    JsonField::Num("mops_baseline", b.mops),
                    JsonField::Num("rebalances", rebalances)});
    // The adaptation tick between rounds: sense the window, maybe re-cut.
    adaptor.Tick();
  }

  if (config.n_keys >= 200'000) {
    LIDX_CHECK(adapted.GetStats().rebalances >= 1);
    LIDX_CHECK(last_baseline.imbalance > 8.0);
    LIDX_CHECK(last_adapted.imbalance * 2.0 <= last_baseline.imbalance);
    std::printf("[check] rebalance spread the hot range; baseline stayed "
                "skewed\n");
  }
  adapted.CheckInvariants();
  baseline.CheckInvariants();
  return rows;
}

}  // namespace
}  // namespace lidx

int main(int argc, char** argv) {
  lidx::Config config;
  if (argc > 1) config.n_keys = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) config.ops_per_phase = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) config.rounds = std::strtoull(argv[3], nullptr, 10);

  std::vector<lidx::bench::JsonRow> rows = lidx::RunLegA(config);
  std::vector<lidx::bench::JsonRow> leg_b = lidx::RunLegB(config);
  rows.insert(rows.end(), leg_b.begin(), leg_b.end());
  lidx::bench::ReportJson(
      "e23", rows,
      {lidx::bench::JsonField::Num("n_keys", config.n_keys),
       lidx::bench::JsonField::Num("ops_per_phase", config.ops_per_phase),
       lidx::bench::JsonField::Num("rounds", config.rounds)});
  return 0;
}
