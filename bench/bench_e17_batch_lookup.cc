// E17 — Batched, prefetch-interleaved lookups vs the scalar hot path.
//
// Claim under test (Marcus et al. "Benchmarking Learned Indexes"; SOSD):
// one-at-a-time lookups leave memory-level parallelism on the table. An
// AMAC-style group scheduler that keeps G lookups in flight per thread —
// prefetching model rows and last-mile windows before touching them —
// should lift throughput well above the scalar path on datasets whose
// working set dwarfs the caches, for learned and traditional indexes
// alike. Expected shape: throughput rises with G until the load queue
// saturates (G ~ 16-32), and the learned indexes keep their latency edge
// over the B+-tree at every batch size because their per-stage arithmetic
// is cheaper than the tree's per-level binary search.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/alex.h"
#include "one_d/pgm.h"
#include "one_d/radix_spline.h"
#include "one_d/rmi.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 10'000'000;
constexpr size_t kNumLookups = 1'000'000;
constexpr size_t kBatchSizes[] = {1, 8, 16, 32, 64};
constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

// Runs lookups [0, len) of `q` through the index at group size `g`.
// g == 1 is the scalar baseline (plain Find loop, no scheduler).
template <typename Index>
void LookupDispatch(const Index& idx, size_t g, const uint64_t* q, size_t len,
                    uint64_t* out) {
  switch (g) {
    case 8:
      idx.template LookupBatch<8>(q, len, out);
      break;
    case 16:
      idx.template LookupBatch<16>(q, len, out);
      break;
    case 32:
      idx.template LookupBatch<32>(q, len, out);
      break;
    case 64:
      idx.template LookupBatch<64>(q, len, out);
      break;
    default:
      for (size_t i = 0; i < len; ++i) out[i] = idx.Find(q[i]).value_or(0);
      break;
  }
}

struct AcceptanceTracker {
  double best_speedup = 0.0;
  std::string best_index;
};

// Sweeps batch size x thread count for one built index and prints a table
// block. Returns the best single-thread batched-over-scalar speedup.
template <typename Index>
double SweepIndex(const std::string& dist, const std::string& name,
                  const Index& idx, const std::vector<uint64_t>& queries,
                  const std::vector<uint64_t>& expected) {
  // Correctness guard: the batched path must agree with scalar Find.
  {
    std::vector<uint64_t> got(queries.size());
    LookupDispatch(idx, 16, queries.data(), queries.size(), got.data());
    size_t bad = 0;
    for (size_t i = 0; i < queries.size(); ++i) bad += (got[i] != expected[i]);
    if (bad != 0) {
      std::printf("!! %s/%s: %zu batched lookups disagree with scalar\n",
                  dist.c_str(), name.c_str(), bad);
    }
  }

  std::vector<uint64_t> out(queries.size());
  std::printf("\n[%s] %s\n", dist.c_str(), name.c_str());
  std::printf("%-8s %10s %10s %10s %10s %10s %14s\n", "threads", "G=1",
              "G=8", "G=16", "G=32", "G=64", "best-speedup");
  double single_thread_best = 0.0;
  for (size_t threads : kThreadCounts) {
    double mops[5] = {0};
    int col = 0;
    for (size_t g : kBatchSizes) {
      mops[col++] = bench::MeasureThroughputMops(
          threads, g, kNumLookups, [&](size_t begin, size_t len) {
            LookupDispatch(idx, g, queries.data() + begin, len,
                           out.data() + begin);
          });
      DoNotOptimize(out[out.size() - 1]);
    }
    double best_batched = 0.0;
    for (int i = 1; i < 5; ++i) best_batched = std::max(best_batched, mops[i]);
    const double speedup = mops[0] > 0.0 ? best_batched / mops[0] : 0.0;
    if (threads == 1) single_thread_best = speedup;
    std::printf("%-8zu %10.2f %10.2f %10.2f %10.2f %10.2f %13.2fx\n", threads,
                mops[0], mops[1], mops[2], mops[3], mops[4], speedup);
  }
  return single_thread_best;
}

void RunDistribution(KeyDistribution dist, AcceptanceTracker* acceptance) {
  const std::string dist_name = KeyDistributionName(dist);
  std::printf("\n---- %s, %zu keys, %zu lookups ----\n", dist_name.c_str(),
              kNumKeys, kNumLookups);
  const bench::Dataset1D data =
      bench::MakeDataset1D(dist, kNumKeys, 42, bench::ValueScheme::kHashed);
  const std::vector<uint64_t>& keys = data.keys;
  const std::vector<uint64_t>& values = data.values;

  // Uniformly random hits; the interesting traffic for MLP (misses spend
  // their time in the same search windows, so the shape matches).
  Rng rng(7);
  std::vector<uint64_t> queries(kNumLookups);
  for (size_t i = 0; i < kNumLookups; ++i) {
    queries[i] = keys[rng.NextBounded(keys.size())];
  }
  std::vector<uint64_t> expected(kNumLookups);
  for (size_t i = 0; i < kNumLookups; ++i) {
    expected[i] = queries[i] ^ 0x9E3779B9u;
  }

  auto track = [&](const std::string& name, double speedup) {
    if (dist == KeyDistribution::kLognormal &&
        speedup > acceptance->best_speedup) {
      acceptance->best_speedup = speedup;
      acceptance->best_index = name;
    }
  };

  {
    Rmi<uint64_t, uint64_t> rmi;
    const double ms =
        bench::MeasureMs([&] { rmi.Build(keys, values); });
    std::printf("\nbuild RMI: %.0f ms\n", ms);
    track("RMI", SweepIndex(dist_name, "RMI", rmi, queries, expected));
  }
  {
    PgmIndex<uint64_t, uint64_t> pgm;
    const double ms =
        bench::MeasureMs([&] { pgm.Build(keys, values); });
    std::printf("\nbuild PGM: %.0f ms\n", ms);
    track("PGM", SweepIndex(dist_name, "PGM", pgm, queries, expected));
  }
  {
    RadixSpline<uint64_t, uint64_t> rs;
    const double ms =
        bench::MeasureMs([&] { rs.Build(keys, values); });
    std::printf("\nbuild RadixSpline: %.0f ms\n", ms);
    track("RadixSpline",
          SweepIndex(dist_name, "RadixSpline", rs, queries, expected));
  }
  {
    AlexIndex<uint64_t, uint64_t> alex;
    const double ms = bench::MeasureMs([&] { alex.BulkLoad(keys, values); });
    std::printf("\nbuild ALEX: %.0f ms\n", ms);
    track("ALEX", SweepIndex(dist_name, "ALEX", alex, queries, expected));
  }
  {
    const auto pairs = bench::ToPairs(data);
    BPlusTree<uint64_t, uint64_t> btree;
    const double ms = bench::MeasureMs([&] { btree.BulkLoad(pairs); });
    std::printf("\nbuild B+tree: %.0f ms\n", ms);
    // The baseline rides along for apples-to-apples comparisons but does
    // not count toward the learned-index acceptance criterion.
    SweepIndex(dist_name, "B+tree", btree, queries, expected);
  }
}

void Run() {
  bench::PrintHeader(
      "E17 — batched, prefetch-interleaved lookups (Mops/s)",
      "AMAC-style batching with software prefetch lifts lookup throughput "
      "over the scalar path by overlapping cache misses across G in-flight "
      "lookups per thread");

  AcceptanceTracker acceptance;
  RunDistribution(KeyDistribution::kUniform, &acceptance);
  RunDistribution(KeyDistribution::kLognormal, &acceptance);
  RunDistribution(KeyDistribution::kClustered, &acceptance);

  std::printf(
      "\n[acceptance] lognormal/%zu-key single-thread best batched "
      "speedup: %s %.2fx (target >= 1.30x)\n",
      kNumKeys, acceptance.best_index.c_str(), acceptance.best_speedup);
}

}  // namespace
}  // namespace lidx

int main() {
  lidx::Run();
  return 0;
}
