// A1 (ablation) — ALEX design knobs: gap headroom and node size.
//
// Why these knobs: the gapped array's whole point is that most inserts hit
// an empty slot (O(1)) instead of shifting; `initial_density` controls the
// headroom a rebuild leaves, and `max_node_slots` controls how much data a
// single model must fit before splitting. Expected shape: denser layouts
// save memory but shift more per insert; huge nodes stress the linear
// model (longer last-mile searches), tiny nodes pay tree-descent and
// rebuild overheads.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/alex.h"

namespace lidx {
namespace {

constexpr size_t kInitialKeys = 500'000;
constexpr size_t kNumOps = 300'000;

void Run(TablePrinter* table, const std::string& label,
         const AlexIndex<uint64_t, uint64_t>::Options& options,
         const std::vector<uint64_t>& initial,
         const std::vector<uint64_t>& values,
         const std::vector<uint64_t>& inserts,
         const std::vector<uint64_t>& lookups) {
  AlexIndex<uint64_t, uint64_t> index(options);
  index.BulkLoad(initial, values);
  Timer t1;
  for (size_t i = 0; i < inserts.size(); ++i) {
    index.Insert(inserts[i], i);
  }
  const double insert_kops =
      static_cast<double>(inserts.size()) / t1.ElapsedSeconds() / 1e3;
  uint64_t sink = 0;
  const double ns = bench::MeasureNsPerOp(lookups.size(), [&](size_t i) {
    sink += index.Find(lookups[i]).value_or(0);
  });
  DoNotOptimize(sink);
  table->AddRow({label, TablePrinter::FormatDouble(insert_kops, 0),
                 TablePrinter::FormatDouble(ns, 0),
                 TablePrinter::FormatCount(index.NumDataNodes()),
                 TablePrinter::FormatBytes(index.SizeBytes())});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "A1 (ablation): ALEX gap headroom and node size (500K preload, 300K "
      "inserts)",
      "gapped-array headroom buys insert speed with memory; node size "
      "trades model quality against tree overhead");

  const auto initial =
      GenerateKeys(KeyDistribution::kLognormal, kInitialKeys, 4141);
  std::vector<uint64_t> values(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) values[i] = i;
  const auto inserts =
      GenerateKeys(KeyDistribution::kLognormal, kNumOps, 4242);
  const auto lookups = GenerateLookupKeys(initial, kNumOps, 0.0, 0.0, 37);

  TablePrinter table({"config", "insert Kops/s", "ns/lookup", "data_nodes",
                      "size"});
  {
    AlexIndex<uint64_t, uint64_t>::Options opts;
    opts.initial_density = 0.9;
    opts.max_density = 0.95;
    Run(&table, "dense (d0=0.9)", opts, initial, values, inserts, lookups);
  }
  {
    AlexIndex<uint64_t, uint64_t>::Options opts;  // Defaults: 0.6 / 0.8.
    Run(&table, "default (d0=0.6)", opts, initial, values, inserts, lookups);
  }
  {
    AlexIndex<uint64_t, uint64_t>::Options opts;
    opts.initial_density = 0.3;
    Run(&table, "sparse (d0=0.3)", opts, initial, values, inserts, lookups);
  }
  {
    AlexIndex<uint64_t, uint64_t>::Options opts;
    opts.max_node_slots = 512;
    opts.bulk_leaf_entries = 256;
    Run(&table, "small nodes (512)", opts, initial, values, inserts,
        lookups);
  }
  {
    AlexIndex<uint64_t, uint64_t>::Options opts;
    opts.max_node_slots = 65536;
    opts.bulk_leaf_entries = 16384;
    Run(&table, "large nodes (64K)", opts, initial, values, inserts,
        lookups);
  }
  table.Print();
  return 0;
}
