// A4 (ablation/extension) — learned R-tree packing vs STR bulk loading.
//
// Tutorial §5.5 covers R-tree construction driven by learned partition
// policies (PLATON, RLR-tree): a workload-aware packing touches fewer
// leaf pages per query than the workload-oblivious STR order, on the same
// R-tree query machinery. The effect lives in the *boundary-dominated*
// regime (queries returning about a page or less): for a w x h query over
// pages of dims (tx, ty), expected touches are (w/tx+1)(h/ty+1), minimized
// when pages are shaped like the queries — which STR (square tiles)
// cannot do for elongated workloads. Expected shape: the learned layout
// beats STR on the elongated workload it trained for and *loses* on a
// differently-shaped workload — the instance-optimization trade-off.
// (On output-dominated queries every layout pays ~output/page_size pages;
// parity is the ceiling there.)

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/learned_packing.h"
#include "spatial/rtree.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 500'000;

// Elongated rectangles (width = aspect * height) with expected fractional
// area `selectivity`, centered on data points.
std::vector<RangeQuery2D> GenerateBandQueries(
    const std::vector<Point2D>& data, size_t n, double selectivity,
    double aspect, uint64_t seed) {
  Rng rng(seed);
  const double h = std::sqrt(selectivity / aspect);
  const double w = h * aspect;
  std::vector<RangeQuery2D> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point2D& c = data[rng.NextBounded(data.size())];
    RangeQuery2D q;
    q.min_x = std::max(0.0, c.x - w / 2);
    q.min_y = std::max(0.0, c.y - h / 2);
    q.max_x = std::min(1.0, q.min_x + w);
    q.max_y = std::min(1.0, q.min_y + h);
    queries.push_back(q);
  }
  return queries;
}

void Measure(TablePrinter* table, const char* layout, const char* workload,
             RTree* tree, const std::vector<RangeQuery2D>& queries) {
  RTreeQueryStats stats;
  uint64_t sink = 0;
  Timer timer;
  for (const RangeQuery2D& q : queries) {
    sink += tree->RangeQuery(q, &stats).size();
  }
  const double us =
      timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.size());
  DoNotOptimize(sink);
  table->AddRow(
      {workload, layout,
       TablePrinter::FormatDouble(
           static_cast<double>(stats.leaves_visited) /
               static_cast<double>(queries.size()),
           1),
       TablePrinter::FormatDouble(
           static_cast<double>(stats.nodes_visited) /
               static_cast<double>(queries.size()),
           1),
       TablePrinter::FormatDouble(us, 1)});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "A4: learned R-tree packing (PLATON-style) vs STR (500K points)",
      "workload-aware leaf packing touches fewer pages per query than the "
      "workload-oblivious STR order");

  // Elongated (16:1) selective queries: latitude-band / road-segment
  // style, the regime where page shape matters. The unseen workload is
  // square and wider — deliberately mismatched.
  const auto points =
      GeneratePoints(PointDistribution::kUniform2D, kNumPoints, 7171);
  const auto train = GenerateBandQueries(points, 64, 0.00005, 16.0, 7272);
  const auto test_seen =
      GenerateBandQueries(points, 400, 0.00005, 16.0, 7373);
  const auto test_unseen = GenerateRangeQueries(points, 400, 0.0005, 7474);

  RTree str_tree;
  const double str_ms = bench::MeasureMs([&] { str_tree.BulkLoad(points); });

  RTree learned_tree;
  LearnedRTreePacker packer;
  const double learned_ms = bench::MeasureMs(
      [&] { packer.BuildInto(&learned_tree, points, train); });
  learned_tree.CheckInvariants();

  TablePrinter table({"workload", "layout", "leaves/query", "nodes/query",
                      "us/query"});
  Measure(&table, "str", "like-training (16:1 bands)", &str_tree,
          test_seen);
  Measure(&table, "learned-packing", "like-training (16:1 bands)",
          &learned_tree, test_seen);
  Measure(&table, "str", "mismatched (squares)", &str_tree, test_unseen);
  Measure(&table, "learned-packing", "mismatched (squares)", &learned_tree,
          test_unseen);
  table.Print();
  std::printf("build: str %.0f ms, learned packing %.0f ms\n", str_ms,
              learned_ms);
  return 0;
}
