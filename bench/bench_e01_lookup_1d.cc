// E1 — One-dimensional point lookups: learned indexes vs. the B+-tree.
//
// Tutorial claim (§1, §4): learned one-dimensional indexes improve both
// query time and index size over the B-tree. Expected shape: RMI / PGM /
// RadixSpline beat the B+-tree on lookup latency on smooth and moderately
// skewed data, with model sizes orders of magnitude below the B+-tree's
// inner-node footprint; mutable learned indexes (ALEX, LIPP) remain
// competitive on reads.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/search.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/alex.h"
#include "one_d/hybrid_rmi.h"
#include "one_d/lipp.h"
#include "one_d/pgm.h"
#include "one_d/radix_spline.h"
#include "one_d/rmi.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 1'000'000;
constexpr size_t kNumLookups = 200'000;

struct Row {
  std::string dist;
  std::string index;
  double build_ms;
  double ns_hit;
  double ns_mixed;  // 50% misses.
  size_t model_bytes;
  size_t total_bytes;
};

template <typename BuildFn, typename LookupFn, typename ModelBytesFn,
          typename TotalBytesFn>
Row RunOne(const std::string& dist, const std::string& name,
           const std::vector<uint64_t>& hits,
           const std::vector<uint64_t>& mixed, BuildFn build, LookupFn lookup,
           ModelBytesFn model_bytes, TotalBytesFn total_bytes) {
  Row row;
  row.dist = dist;
  row.index = name;
  row.build_ms = bench::MeasureMs(build);
  uint64_t sink = 0;
  row.ns_hit = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lookup(hits[i]);
  });
  row.ns_mixed = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lookup(mixed[i]);
  });
  DoNotOptimize(sink);
  row.model_bytes = model_bytes();
  row.total_bytes = total_bytes();
  return row;
}

void RunDistribution(KeyDistribution dist, std::vector<Row>* rows) {
  const bench::Dataset1D data = bench::MakeDataset1D(dist, kNumKeys, 4242);
  const std::vector<uint64_t>& keys = data.keys;
  const std::vector<uint64_t>& values = data.values;
  const auto hits = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 7);
  const auto mixed = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.5, 11);
  const std::string dname = KeyDistributionName(dist);

  {
    // Baseline 0: plain binary search over the sorted array.
    std::vector<uint64_t> ks, vs;
    rows->push_back(RunOne(
        dname, "binary-search", hits, mixed,
        [&] {
          ks = keys;
          vs = values;
        },
        [&](uint64_t k) -> uint64_t {
          const size_t pos = BinarySearchLowerBound(ks, k, 0, ks.size());
          return (pos < ks.size() && ks[pos] == k) ? vs[pos] : 0;
        },
        [] { return size_t{0}; },
        [&] { return ks.capacity() * 8 + vs.capacity() * 8; }));
  }
  {
    BPlusTree<uint64_t, uint64_t> tree;
    const auto pairs = bench::ToPairs(data);
    rows->push_back(RunOne(
        dname, "b+tree", hits, mixed, [&] { tree.BulkLoad(pairs); },
        [&](uint64_t k) -> uint64_t { return tree.Find(k).value_or(0); },
        [&] { return tree.SizeBytes() - 16 * keys.size(); },
        [&] { return tree.SizeBytes(); }));
  }
  {
    Rmi<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "rmi", hits, mixed, [&] { index.Build(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return index.ModelSizeBytes(); },
        [&] { return index.SizeBytes(); }));
  }
  {
    HybridRmi<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "hybrid-rmi", hits, mixed, [&] { index.Build(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return index.ModelSizeBytes(); },
        [&] { return index.SizeBytes(); }));
  }
  {
    PgmIndex<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "pgm", hits, mixed, [&] { index.Build(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return index.ModelSizeBytes(); },
        [&] { return index.SizeBytes(); }));
  }
  {
    RadixSpline<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "radix-spline", hits, mixed,
        [&] { index.Build(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return index.ModelSizeBytes(); },
        [&] { return index.SizeBytes(); }));
  }
  {
    AlexIndex<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "alex", hits, mixed, [&] { index.BulkLoad(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return size_t{0}; }, [&] { return index.SizeBytes(); }));
  }
  {
    LippIndex<uint64_t, uint64_t> index;
    rows->push_back(RunOne(
        dname, "lipp", hits, mixed, [&] { index.BulkLoad(keys, values); },
        [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); },
        [&] { return size_t{0}; }, [&] { return index.SizeBytes(); }));
  }
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E1: 1-D point lookups (1M keys, 200K lookups per series)",
      "learned 1-D indexes beat the B+-tree on lookup time and index size");
  std::vector<Row> rows;
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kLognormal,
        KeyDistribution::kClustered, KeyDistribution::kStep}) {
    RunDistribution(dist, &rows);
  }
  TablePrinter table({"dist", "index", "build_ms", "ns/hit", "ns/mixed",
                      "model_size", "total_size"});
  for (const Row& r : rows) {
    table.AddRow({r.dist, r.index, TablePrinter::FormatDouble(r.build_ms, 1),
                  TablePrinter::FormatDouble(r.ns_hit, 0),
                  TablePrinter::FormatDouble(r.ns_mixed, 0),
                  TablePrinter::FormatBytes(r.model_bytes),
                  TablePrinter::FormatBytes(r.total_bytes)});
  }
  table.Print();
  return 0;
}
