#ifndef LIDX_BENCH_BENCH_UTIL_H_
#define LIDX_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "datasets/generators.h"

namespace lidx::bench {

// ----- Shared dataset generation -----
//
// Every 1-D bench needs the same thing: sorted unique keys from a named
// distribution plus a value array. Centralised here so experiments agree on
// what "1M lognormal keys" means and new benches (E18) don't re-grow their
// own copy of the loop.

enum class ValueScheme {
  kRank,   // values[i] = i (rank values; the common lookup-bench choice).
  kHashed  // values[i] = keys[i] ^ 0x9E3779B9 (checkable from the key alone).
};

struct Dataset1D {
  std::vector<uint64_t> keys;    // Sorted, unique.
  std::vector<uint64_t> values;  // Parallel to keys.
};

inline Dataset1D MakeDataset1D(KeyDistribution dist, size_t n, uint64_t seed,
                               ValueScheme scheme = ValueScheme::kRank) {
  Dataset1D data;
  data.keys = GenerateKeys(dist, n, seed);
  data.values.resize(data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    data.values[i] = scheme == ValueScheme::kRank
                         ? i
                         : (data.keys[i] ^ 0x9E3779B9u);
  }
  return data;
}

// Key/value pairs for indexes that bulk-load from std::pair vectors.
inline std::vector<std::pair<uint64_t, uint64_t>> ToPairs(
    const Dataset1D& data) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs(data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    pairs[i] = {data.keys[i], data.values[i]};
  }
  return pairs;
}

// p in [0, 100] over a copy-free nth_element pass; `samples` is reordered.
inline double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(), samples->begin() + rank, samples->end());
  return (*samples)[rank];
}

// Milliseconds consumed by `fn` (single shot; used for build times).
inline double MeasureMs(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.ElapsedSeconds() * 1e3;
}

// Average nanoseconds per iteration of `fn(i)` over `n` iterations.
// One warmup pass over min(n, warmup) iterations.
template <typename Fn>
double MeasureNsPerOp(size_t n, Fn&& fn, size_t warmup = 1000) {
  const size_t w = warmup < n ? warmup : n;
  for (size_t i = 0; i < w; ++i) fn(i);
  Timer timer;
  for (size_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(n);
}

// Multi-threaded throughput driver for batched lookups. Splits
// [0, total_ops) evenly across `num_threads` workers; each worker walks
// its slice in `batch_size` chunks calling fn(begin, len), where fn is
// expected to process lookups [begin, begin + len) (e.g. by calling an
// index's LookupBatch on a shared query array and writing to a disjoint
// slice of a shared output array). fn must be safe to call concurrently —
// read-only index access with disjoint outputs qualifies. Returns
// aggregate millions of operations per second. One untimed warmup batch
// per worker slice touches the code path before the clock starts.
template <typename Fn>
double MeasureThroughputMops(size_t num_threads, size_t batch_size,
                             size_t total_ops, Fn&& fn) {
  if (num_threads == 0 || batch_size == 0 || total_ops == 0) return 0.0;
  auto slice = [&](size_t t) {
    const size_t begin = t * total_ops / num_threads;
    const size_t end = (t + 1) * total_ops / num_threads;
    return std::pair<size_t, size_t>(begin, end);
  };
  for (size_t t = 0; t < num_threads; ++t) {
    const auto [begin, end] = slice(t);
    if (begin < end) fn(begin, std::min(batch_size, end - begin));
  }
  Timer timer;
  if (num_threads == 1) {
    // Avoid thread spawn/join noise in the single-thread rows.
    const auto [begin, end] = slice(0);
    for (size_t i = begin; i < end; i += batch_size) {
      fn(i, std::min(batch_size, end - i));
    }
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        const auto [begin, end] = slice(t);
        for (size_t i = begin; i < end; i += batch_size) {
          fn(i, std::min(batch_size, end - i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(total_ops) / seconds / 1e6;
}

// On-disk footprint of a page file (st_size), for bytes-per-key rows in
// the disk benches. Returns 0 if the file does not exist.
inline size_t FileSizeBytes(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<size_t>(st.st_size);
}

// The space metric the compression benches gate on: on-disk bytes per
// indexed key.
inline double BytesPerKey(size_t file_bytes, size_t num_keys) {
  if (num_keys == 0) return 0.0;
  return static_cast<double>(file_bytes) / static_cast<double>(num_keys);
}

// Standard header every bench binary prints, so outputs are self-describing
// when concatenated into bench_output.txt.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Claim under test: %s\n", claim.c_str());
  std::printf("==============================================\n");
}

// ----- Machine-readable results -----
//
// ReportJson writes BENCH_<name>.json next to the binary so CI can upload
// benchmark numbers as artifacts and diff them across commits without
// scraping the human-oriented tables.

struct JsonField {
  std::string key;
  std::string rendered;  // Already-valid JSON value text.

  static JsonField Num(const std::string& key, double v) {
    char buf[64];
    if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    return {key, buf};
  }
  static JsonField Num(const std::string& key, size_t v) {
    return {key, std::to_string(v)};
  }
  static JsonField Str(const std::string& key, const std::string& v) {
    std::string out = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return {key, out};
  }
};

using JsonRow = std::vector<JsonField>;

inline void ReportJson(const std::string& name,
                       const std::vector<JsonRow>& rows,
                       const std::vector<JsonField>& meta = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ReportJson: cannot open %s\n", path.c_str());
    return;
  }
  const auto write_object = [&](const std::vector<JsonField>& fields,
                                const char* indent) {
    std::fprintf(f, "{");
    for (size_t i = 0; i < fields.size(); ++i) {
      std::fprintf(f, "%s%s\"%s\": %s", i == 0 ? "" : ",", indent,
                   fields[i].key.c_str(), fields[i].rendered.c_str());
    }
    std::fprintf(f, "%s}", fields.empty() ? "" : " ");
  };
  std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"meta\": ", name.c_str());
  write_object(meta, " ");
  std::fprintf(f, ",\n  \"rows\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    ");
    write_object(rows[r], " ");
    std::fprintf(f, "%s\n", r + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace lidx::bench

#endif  // LIDX_BENCH_BENCH_UTIL_H_
