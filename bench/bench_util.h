#ifndef LIDX_BENCH_BENCH_UTIL_H_
#define LIDX_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"

namespace lidx::bench {

// Milliseconds consumed by `fn` (single shot; used for build times).
inline double MeasureMs(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.ElapsedSeconds() * 1e3;
}

// Average nanoseconds per iteration of `fn(i)` over `n` iterations.
// One warmup pass over min(n, warmup) iterations.
template <typename Fn>
double MeasureNsPerOp(size_t n, Fn&& fn, size_t warmup = 1000) {
  const size_t w = warmup < n ? warmup : n;
  for (size_t i = 0; i < w; ++i) fn(i);
  Timer timer;
  for (size_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(n);
}

// Standard header every bench binary prints, so outputs are self-describing
// when concatenated into bench_output.txt.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Claim under test: %s\n", claim.c_str());
  std::printf("==============================================\n");
}

}  // namespace lidx::bench

#endif  // LIDX_BENCH_BENCH_UTIL_H_
