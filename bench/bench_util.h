#ifndef LIDX_BENCH_BENCH_UTIL_H_
#define LIDX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace lidx::bench {

// Milliseconds consumed by `fn` (single shot; used for build times).
inline double MeasureMs(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.ElapsedSeconds() * 1e3;
}

// Average nanoseconds per iteration of `fn(i)` over `n` iterations.
// One warmup pass over min(n, warmup) iterations.
template <typename Fn>
double MeasureNsPerOp(size_t n, Fn&& fn, size_t warmup = 1000) {
  const size_t w = warmup < n ? warmup : n;
  for (size_t i = 0; i < w; ++i) fn(i);
  Timer timer;
  for (size_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(n);
}

// Multi-threaded throughput driver for batched lookups. Splits
// [0, total_ops) evenly across `num_threads` workers; each worker walks
// its slice in `batch_size` chunks calling fn(begin, len), where fn is
// expected to process lookups [begin, begin + len) (e.g. by calling an
// index's LookupBatch on a shared query array and writing to a disjoint
// slice of a shared output array). fn must be safe to call concurrently —
// read-only index access with disjoint outputs qualifies. Returns
// aggregate millions of operations per second. One untimed warmup batch
// per worker slice touches the code path before the clock starts.
template <typename Fn>
double MeasureThroughputMops(size_t num_threads, size_t batch_size,
                             size_t total_ops, Fn&& fn) {
  if (num_threads == 0 || batch_size == 0 || total_ops == 0) return 0.0;
  auto slice = [&](size_t t) {
    const size_t begin = t * total_ops / num_threads;
    const size_t end = (t + 1) * total_ops / num_threads;
    return std::pair<size_t, size_t>(begin, end);
  };
  for (size_t t = 0; t < num_threads; ++t) {
    const auto [begin, end] = slice(t);
    if (begin < end) fn(begin, std::min(batch_size, end - begin));
  }
  Timer timer;
  if (num_threads == 1) {
    // Avoid thread spawn/join noise in the single-thread rows.
    const auto [begin, end] = slice(0);
    for (size_t i = begin; i < end; i += batch_size) {
      fn(i, std::min(batch_size, end - i));
    }
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        const auto [begin, end] = slice(t);
        for (size_t i = begin; i < end; i += batch_size) {
          fn(i, std::min(batch_size, end - i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(total_ops) / seconds / 1e6;
}

// Standard header every bench binary prints, so outputs are self-describing
// when concatenated into bench_output.txt.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Claim under test: %s\n", claim.c_str());
  std::printf("==============================================\n");
}

}  // namespace lidx::bench

#endif  // LIDX_BENCH_BENCH_UTIL_H_
