// E3 — PGM ε sweep: the size/latency trade-off behind worst-case bounds.
//
// Tutorial claim (§4.4, §6.7): ε-bounded designs expose an explicit knob —
// smaller ε means more segments (larger model) but a tighter certified
// search window (lower latency); the guarantee holds on every
// distribution, including adversarial ones. Expected shape: segments fall
// roughly as 1/ε while lookup cost grows with log(ε).

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/pgm.h"

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E3: PGM-index epsilon sweep (1M keys)",
      "epsilon trades model size against certified lookup latency");

  constexpr size_t kNumKeys = 1'000'000;
  constexpr size_t kNumLookups = 200'000;

  TablePrinter table({"dist", "epsilon", "segments", "levels", "model_size",
                      "ns/lookup"});
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kLognormal,
        KeyDistribution::kAdversarial}) {
    const auto keys = GenerateKeys(dist, kNumKeys, 5005);
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    const auto lookups = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 13);

    for (size_t eps : {4u, 16u, 64u, 256u, 1024u}) {
      PgmIndex<uint64_t, uint64_t> index;
      PgmIndex<uint64_t, uint64_t>::Options opts;
      opts.epsilon = eps;
      index.Build(keys, values, opts);
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      DoNotOptimize(sink);
      table.AddRow({KeyDistributionName(dist), std::to_string(eps),
                    TablePrinter::FormatCount(index.NumSegments()),
                    std::to_string(index.NumLevels()),
                    TablePrinter::FormatBytes(index.ModelSizeBytes()),
                    TablePrinter::FormatDouble(ns, 0)});
    }
  }
  table.Print();
  return 0;
}
