// E20 — SIMD kernel layer: vectorized last-mile search, model inference,
// and filter probes vs their scalar twins.
//
// Claim under test (SOSD engineering notes; Kraska et al.'s observation
// that learned-index lookups bottleneck on the last-mile search): once the
// model has shrunk the search to an ε-window of tens-to-hundreds of keys,
// a branch-free vector scan beats branch-reduced binary search — the
// window fits a handful of cache lines and the comparisons are 4-wide.
// Expected shape: the SIMD window kernel wins most at mid-size windows
// (32-256 keys, where binary search pays ~5-8 mispredictable branches),
// batched model inference wins roughly the vector width, and the Bloom
// hash batch turns the two 128-bit mixers into 4-lane arithmetic. The
// end-to-end sweep shows a smaller but real lookup win because the model
// stages share the lookup's cycle budget.
//
// All comparisons run the *same* dispatched entry points with the process
// dispatch level forced (simd::SetLevel), so scalar and vector rows
// measure identical harness overhead.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "baselines/bloom.h"
#include "common/random.h"
#include "common/search.h"
#include "common/simd.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/pgm.h"
#include "one_d/radix_spline.h"
#include "one_d/rmi.h"

namespace lidx {

// Default sizes; a single positional argument scales every section down
// (CI smoke runs `bench_e20_simd_kernels 100000`).
size_t kArraySize = 8'000'000;   // Out-of-cache sorted array.
size_t kKernelOps = 2'000'000;   // Ops per kernel measurement.
size_t kE2eKeys = 4'000'000;
size_t kE2eLookups = 1'000'000;

namespace {

constexpr size_t kWindowSizes[] = {8, 16, 32, 64, 128, 256};

std::vector<bench::JsonRow> g_rows;

// ----- ε-window search kernel: scalar binary vs scalar linear vs SIMD -----

struct WindowBench {
  std::vector<uint64_t> data;   // Sorted.
  std::vector<size_t> starts;   // Random window starts.
  std::vector<uint64_t> probes; // Key inside (or near) each window.
};

WindowBench MakeWindowBench(size_t array_size, size_t window) {
  WindowBench b;
  Rng rng(1234);
  b.data.resize(array_size);
  uint64_t cur = 0;
  for (auto& v : b.data) {
    cur += 1 + rng.Next() % 32;
    v = cur;
  }
  b.starts.resize(kKernelOps);
  b.probes.resize(kKernelOps);
  for (size_t i = 0; i < kKernelOps; ++i) {
    const size_t lo = rng.NextBounded(array_size - window);
    b.starts[i] = lo;
    // Probe keys land uniformly inside the window, the realistic shape for
    // a certified ε-window around a model prediction.
    b.probes[i] = b.data[lo + rng.NextBounded(window)] + rng.Next() % 2;
  }
  return b;
}

// Best-of-kReps so one preempted pass on a busy machine cannot poison a
// cell (each pass is only tens of milliseconds).
constexpr int kReps = 5;

double MopsWindowSearch(const WindowBench& b, size_t window, bool binary) {
  double best_ns = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t checksum = 0;
    const double ns = bench::MeasureNsPerOp(kKernelOps, [&](size_t i) {
      const size_t lo = b.starts[i];
      const uint64_t key = b.probes[i];
      size_t r;
      if (binary) {
        r = BinarySearchLowerBound(b.data, key, lo, lo + window);
      } else {
        // Dispatched kernel: honors the currently forced simd::SetLevel.
        r = lo + simd::CountLess(b.data.data() + lo, window, key);
      }
      checksum += r;
    });
    DoNotOptimize(checksum);
    best_ns = std::min(best_ns, ns);
  }
  return 1e3 / best_ns;  // Mops.
}

double RunWindowSection() {
  double best_speedup = 0.0;
  // "hot": the window's cache lines are resident, the shape the batched
  // lookup path produces by prefetching the span one stage ahead (and what
  // upper-level model arrays look like under any locality). "cold": every
  // window is a fresh trip to memory; there the load time dominates and
  // binary search's fewer touched lines partially cancel the vector win.
  struct Regime {
    const char* name;
    size_t array_size;
  };
  for (const Regime regime : {Regime{"hot", 1u << 15},
                              Regime{"cold", kArraySize}}) {
    std::printf("\n-- ε-window lower-bound search, %s array (%zu keys), "
                "%zu ops/point --\n",
                regime.name, regime.array_size, kKernelOps);
    std::printf("%-8s %14s %14s %14s %12s %12s\n", "window", "binary(Mops)",
                "scalar(Mops)", "simd(Mops)", "vs-binary", "vs-scalar");
    for (size_t window : kWindowSizes) {
      const WindowBench b = MakeWindowBench(regime.array_size, window);
      simd::SetLevel(simd::Level::kScalar);
      const double binary_mops = MopsWindowSearch(b, window, /*binary=*/true);
      const double scalar_mops = MopsWindowSearch(b, window, /*binary=*/false);
      simd::SetLevel(simd::DetectBestLevel());
      const double simd_mops = MopsWindowSearch(b, window, /*binary=*/false);
      const double vs_binary = binary_mops > 0 ? simd_mops / binary_mops : 0;
      const double vs_scalar = scalar_mops > 0 ? simd_mops / scalar_mops : 0;
      // Acceptance tracks the dispatched kernel against its own scalar
      // fallback (what a no-AVX2 machine runs); the inlined binary-search
      // column rides along as the honest pre-SIMD library baseline.
      best_speedup = std::max(best_speedup, vs_scalar);
      std::printf("%-8zu %14.2f %14.2f %14.2f %11.2fx %11.2fx\n", window,
                  binary_mops, scalar_mops, simd_mops, vs_binary, vs_scalar);
      g_rows.push_back(
          {bench::JsonField::Str("section", "window_search"),
           bench::JsonField::Str("regime", regime.name),
           bench::JsonField::Num("window", window),
           bench::JsonField::Num("binary_mops", binary_mops),
           bench::JsonField::Num("scalar_linear_mops", scalar_mops),
           bench::JsonField::Num("simd_mops", simd_mops),
           bench::JsonField::Num("speedup_vs_binary", vs_binary),
           bench::JsonField::Num("speedup_vs_scalar", vs_scalar)});
    }
  }
  return best_speedup;
}

// ----- Batched model inference ---------------------------------------------

void RunPredictSection() {
  std::printf("\n-- batched linear-model inference (PredictClampedBatch) --\n");
  Rng rng(99);
  std::vector<uint64_t> keys(kKernelOps);
  for (auto& k : keys) k = rng.Next();
  std::vector<size_t> out(256);
  const double slope = 1.0 / 4096.0;
  const double intercept = 17.0;
  const size_t n = kArraySize;

  auto run = [&] {
    size_t checksum = 0;
    constexpr size_t kChunk = 256;
    Timer timer;
    for (size_t base = 0; base < keys.size(); base += kChunk) {
      const size_t m = std::min(kChunk, keys.size() - base);
      simd::PredictClampedBatch(slope, intercept, keys.data() + base, m, n,
                                out.data());
      checksum += out[m - 1];
    }
    DoNotOptimize(checksum);
    return static_cast<double>(keys.size()) /
           (static_cast<double>(timer.ElapsedNanos()) + 1.0) * 1e3;  // Mops.
  };
  auto best_of = [&](auto&& fn) {
    double best = 0.0;
    fn();  // Warmup.
    for (int rep = 0; rep < kReps; ++rep) best = std::max(best, fn());
    return best;
  };
  simd::SetLevel(simd::Level::kScalar);
  const double scalar_mops = best_of(run);
  simd::SetLevel(simd::DetectBestLevel());
  const double simd_mops = best_of(run);
  const double speedup = scalar_mops > 0 ? simd_mops / scalar_mops : 0;
  std::printf("scalar %.2f Mkeys/s   simd %.2f Mkeys/s   speedup %.2fx\n",
              scalar_mops, simd_mops, speedup);
  g_rows.push_back({bench::JsonField::Str("section", "predict_batch"),
                    bench::JsonField::Num("scalar_mops", scalar_mops),
                    bench::JsonField::Num("simd_mops", simd_mops),
                    bench::JsonField::Num("speedup", speedup)});
}

// ----- Bloom filter probes --------------------------------------------------

void RunBloomSection() {
  std::printf("\n-- Bloom filter probes (hash batch + MayContainBatch) --\n");
  Rng rng(4242);
  constexpr size_t kFilterKeys = 2'000'000;
  BloomFilter filter(kFilterKeys, 10.0);
  std::vector<uint64_t> members(kFilterKeys);
  for (auto& k : members) {
    k = rng.Next();
    filter.Add(k);
  }
  std::vector<uint64_t> queries(kKernelOps);
  for (size_t i = 0; i < kKernelOps; ++i) {
    queries[i] = (i % 2 == 0) ? members[rng.NextBounded(members.size())]
                              : rng.Next();
  }

  // Ground truth for the batch correctness check, computed untimed.
  size_t hits = 0;
  for (size_t i = 0; i < kKernelOps; ++i) hits += filter.MayContain(queries[i]);

  // Scalar baseline: one MayContain per key (the pre-batch hot path).
  size_t timed_hits = 0;
  const double scalar_ns = bench::MeasureNsPerOp(kKernelOps, [&](size_t i) {
    timed_hits += filter.MayContain(queries[i]);
  });
  DoNotOptimize(timed_hits);
  const double scalar_mops = 1e3 / scalar_ns;

  auto run_batch = [&] {
    constexpr size_t kChunk = 1024;
    bool out[kChunk];
    size_t batch_hits = 0;
    Timer timer;
    for (size_t base = 0; base < queries.size(); base += kChunk) {
      const size_t m = std::min(kChunk, queries.size() - base);
      filter.MayContainBatch(queries.data() + base, m, out);
      for (size_t i = 0; i < m; ++i) batch_hits += out[i];
    }
    DoNotOptimize(batch_hits);
    if (batch_hits != hits) {
      std::printf("!! bloom batch/scalar hit mismatch: %zu vs %zu\n",
                  batch_hits, hits);
    }
    return static_cast<double>(queries.size()) /
           (static_cast<double>(timer.ElapsedNanos()) + 1.0) * 1e3;
  };
  auto best_of = [&](auto&& fn) {
    double best = 0.0;
    fn();  // Warmup (also runs the correctness check).
    for (int rep = 0; rep < kReps; ++rep) best = std::max(best, fn());
    return best;
  };
  simd::SetLevel(simd::Level::kScalar);
  const double batch_scalar_mops = best_of(run_batch);
  simd::SetLevel(simd::DetectBestLevel());
  const double batch_simd_mops = best_of(run_batch);
  const double speedup =
      batch_scalar_mops > 0 ? batch_simd_mops / batch_scalar_mops : 0;
  std::printf(
      "scalar loop %.2f Mops   batch(scalar hash) %.2f Mops   "
      "batch(simd hash) %.2f Mops   simd-vs-scalar-batch %.2fx\n",
      scalar_mops, batch_scalar_mops, batch_simd_mops, speedup);
  g_rows.push_back({bench::JsonField::Str("section", "bloom_batch"),
                    bench::JsonField::Num("scalar_loop_mops", scalar_mops),
                    bench::JsonField::Num("batch_scalar_mops",
                                          batch_scalar_mops),
                    bench::JsonField::Num("batch_simd_mops", batch_simd_mops),
                    bench::JsonField::Num("speedup", speedup)});
}

// ----- End-to-end index sweep ----------------------------------------------

template <typename Index>
void SweepE2e(const std::string& dist, const std::string& name,
              const Index& on, const Index& off,
              const std::vector<uint64_t>& queries) {
  std::vector<uint64_t> out(queries.size());
  auto find_mops = [&](const Index& idx) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      uint64_t checksum = 0;
      const double ns = bench::MeasureNsPerOp(queries.size(), [&](size_t i) {
        checksum += idx.Find(queries[i]).value_or(0);
      });
      DoNotOptimize(checksum);
      best = std::max(best, 1e3 / ns);
    }
    return best;
  };
  auto batch_mops = [&](const Index& idx) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      best = std::max(best, bench::MeasureThroughputMops(
                                1, 32, queries.size(),
                                [&](size_t begin, size_t len) {
                                  idx.template LookupBatch<32>(
                                      queries.data() + begin, len,
                                      out.data() + begin);
                                }));
    }
    return best;
  };
  const double find_off = find_mops(off);
  const double find_on = find_mops(on);
  const double batch_off = batch_mops(off);
  const double batch_on = batch_mops(on);
  std::printf("%-12s %-12s %10.2f %10.2f %9.2fx %10.2f %10.2f %9.2fx\n",
              dist.c_str(), name.c_str(), find_off, find_on,
              find_off > 0 ? find_on / find_off : 0, batch_off, batch_on,
              batch_off > 0 ? batch_on / batch_off : 0);
  g_rows.push_back(
      {bench::JsonField::Str("section", "end_to_end"),
       bench::JsonField::Str("dist", dist),
       bench::JsonField::Str("index", name),
       bench::JsonField::Num("find_scalar_mops", find_off),
       bench::JsonField::Num("find_simd_mops", find_on),
       bench::JsonField::Num("batch_scalar_mops", batch_off),
       bench::JsonField::Num("batch_simd_mops", batch_on)});
}

void RunE2eSection() {
  simd::SetLevel(simd::DetectBestLevel());
  std::printf("\n-- end-to-end lookups, %zu keys, %zu queries "
              "(Options::simd off vs on) --\n", kE2eKeys, kE2eLookups);
  std::printf("%-12s %-12s %10s %10s %10s %10s %10s %10s\n", "dist", "index",
              "find-off", "find-on", "find-x", "batch-off", "batch-on",
              "batch-x");
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kLognormal}) {
    const std::string dist_name = KeyDistributionName(dist);
    const bench::Dataset1D data = bench::MakeDataset1D(
        dist, kE2eKeys, 7, bench::ValueScheme::kHashed);
    Rng rng(31);
    std::vector<uint64_t> queries(kE2eLookups);
    for (auto& q : queries) q = data.keys[rng.NextBounded(data.keys.size())];
    {
      Rmi<uint64_t, uint64_t>::Options opt_on, opt_off;
      opt_off.simd = false;
      Rmi<uint64_t, uint64_t> on, off;
      on.Build(data.keys, data.values, opt_on);
      off.Build(data.keys, data.values, opt_off);
      SweepE2e(dist_name, "RMI", on, off, queries);
    }
    {
      PgmIndex<uint64_t, uint64_t>::Options opt_on, opt_off;
      opt_off.simd = false;
      PgmIndex<uint64_t, uint64_t> on, off;
      on.Build(data.keys, data.values, opt_on);
      off.Build(data.keys, data.values, opt_off);
      SweepE2e(dist_name, "PGM", on, off, queries);
    }
    {
      RadixSpline<uint64_t, uint64_t>::Options opt_on, opt_off;
      opt_off.simd = false;
      RadixSpline<uint64_t, uint64_t> on, off;
      on.Build(data.keys, data.values, opt_on);
      off.Build(data.keys, data.values, opt_off);
      SweepE2e(dist_name, "RadixSpline", on, off, queries);
    }
  }
}

void Run() {
  bench::PrintHeader(
      "E20 — SIMD kernel layer (last-mile search, inference, filter probes)",
      "branch-free vector kernels beat their scalar twins on the ε-window "
      "search, batched model inference, and Bloom probes, with runtime "
      "dispatch keeping results identical on every CPU");
  const simd::Level best = simd::DetectBestLevel();
  std::printf("dispatch: active level %s (cpuid best %s, LIDX_SIMD cap)\n",
              simd::LevelName(simd::ActiveLevel()), simd::LevelName(best));

  const double best_window_speedup = RunWindowSection();
  RunPredictSection();
  RunBloomSection();
  RunE2eSection();
  simd::SetLevel(simd::DetectBestLevel());

  std::printf(
      "\n[acceptance] best ε-window SIMD speedup over the kernel's scalar "
      "fallback: %.2fx (target >= 1.50x)\n", best_window_speedup);
  bench::ReportJson(
      "e20_simd_kernels", g_rows,
      {bench::JsonField::Str("best_level", simd::LevelName(best)),
       bench::JsonField::Num("array_size", kArraySize),
       bench::JsonField::Num("kernel_ops", kKernelOps),
       bench::JsonField::Num("best_window_speedup", best_window_speedup)});
}

}  // namespace
}  // namespace lidx

int main(int argc, char** argv) {
  if (argc > 1) {
    const long long ops = std::atoll(argv[1]);
    if (ops > 0) {
      lidx::kKernelOps = static_cast<size_t>(ops);
      lidx::kArraySize = std::max<size_t>(4096, lidx::kKernelOps * 4);
      lidx::kE2eKeys = std::max<size_t>(4096, lidx::kKernelOps * 2);
      lidx::kE2eLookups = std::max<size_t>(1024, lidx::kKernelOps / 2);
    }
  }
  lidx::Run();
  return 0;
}
