// E16 — Learned indexing over string keys.
//
// Tutorial context: string keys are called out as a frontier for learned
// indexes (SIndex; Spector et al.'s "bounding the last mile") because
// models need numbers and string corpora hide their entropy behind shared
// prefixes. Expected shape: with the corpus prefix stripped, fingerprint
// models beat binary search on URL/word corpora; on a deep-prefix corpus
// whose keys diverge beyond the fingerprint the model degenerates to
// (certified) binary search — the documented limitation full SIndex
// addresses with per-group models.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/search.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/string_index.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 500'000;
constexpr size_t kNumLookups = 200'000;

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E16: learned string indexing (500K keys)",
      "fingerprint models accelerate string lookups once the corpus prefix "
      "is stripped; deep shared prefixes defeat the fingerprint");

  TablePrinter table({"corpus", "index", "ns/hit", "segments",
                      "prefix_stripped"});
  for (StringKeyStyle style :
       {StringKeyStyle::kUrls, StringKeyStyle::kWords,
        StringKeyStyle::kDeepPrefix}) {
    const auto keys = GenerateStringKeys(style, kNumKeys, 6363);
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    // Lookup stream: existing keys, shuffled.
    Rng rng(6464);
    std::vector<const std::string*> probes;
    probes.reserve(kNumLookups);
    for (size_t i = 0; i < kNumLookups; ++i) {
      probes.push_back(&keys[rng.NextBounded(keys.size())]);
    }
    const std::string corpus = StringKeyStyleName(style);

    {
      // Baseline: binary search over the sorted strings.
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        const size_t pos =
            std::lower_bound(keys.begin(), keys.end(), *probes[i]) -
            keys.begin();
        sink += (pos < keys.size() && keys[pos] == *probes[i]) ? values[pos]
                                                               : 0;
      });
      DoNotOptimize(sink);
      table.AddRow({corpus, "binary-search",
                    TablePrinter::FormatDouble(ns, 0), "-", "-"});
    }
    {
      BPlusTree<std::string, uint64_t> tree;
      std::vector<std::pair<std::string, uint64_t>> pairs;
      for (size_t i = 0; i < keys.size(); ++i) {
        pairs.emplace_back(keys[i], i);
      }
      tree.BulkLoad(pairs);
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += tree.Find(*probes[i]).value_or(0);
      });
      DoNotOptimize(sink);
      table.AddRow({corpus, "b+tree", TablePrinter::FormatDouble(ns, 0), "-",
                    "-"});
    }
    {
      StringLearnedIndex<uint64_t> index;
      index.Build(keys, values);
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(*probes[i]).value_or(0);
      });
      DoNotOptimize(sink);
      table.AddRow({corpus, "learned (SIndex-lite)",
                    TablePrinter::FormatDouble(ns, 0),
                    TablePrinter::FormatCount(index.NumSegments()),
                    std::to_string(index.common_prefix_len()) + " bytes"});
    }
  }
  table.Print();
  return 0;
}
