// E14 — Adversarial (poisoned) key sets: bounded vs unbounded error.
//
// Tutorial claim (§6.7): indexes designed with a worst-case guarantee
// (PGM) hold their performance under poisoning-style key sets that blow up
// model error, while unbounded designs (RMI) degrade; the hybrid fallback
// (Hybrid-RMI) caps the damage by swapping poisoned partitions to B-trees.
// Expected shape: RMI's max error window explodes on the adversarial set
// and its latency climbs toward (or past) the B+-tree, while PGM's segment
// count grows instead — it buys its bound with memory, not latency.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/alex.h"
#include "one_d/hybrid_rmi.h"
#include "one_d/pgm.h"
#include "one_d/rmi.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 1'000'000;
constexpr size_t kNumLookups = 200'000;

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E14: adversarial keys (1M keys; poisoned CDF)",
      "epsilon-bounded indexes (PGM) hold under poisoning; unbounded (RMI) "
      "degrade; hybrid fallback caps the damage");

  TablePrinter table(
      {"dist", "index", "ns/lookup", "note"});
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kAdversarial}) {
    const auto keys = GenerateKeys(dist, kNumKeys, 2121);
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    const auto lookups = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 29);
    const std::string dname = KeyDistributionName(dist);
    uint64_t sink = 0;

    {
      BPlusTree<uint64_t, uint64_t> tree;
      std::vector<std::pair<uint64_t, uint64_t>> pairs;
      for (size_t i = 0; i < keys.size(); ++i) pairs.emplace_back(keys[i], i);
      tree.BulkLoad(pairs);
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += tree.Find(lookups[i]).value_or(0);
      });
      table.AddRow({dname, "b+tree", TablePrinter::FormatDouble(ns, 0),
                    "distribution-oblivious"});
    }
    {
      Rmi<uint64_t, uint64_t> index;
      index.Build(keys, values);
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      table.AddRow({dname, "rmi", TablePrinter::FormatDouble(ns, 0),
                    "max_err_window=" +
                        TablePrinter::FormatCount(index.MaxErrorWindow())});
    }
    {
      HybridRmi<uint64_t, uint64_t> index;
      index.Build(keys, values);
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      table.AddRow(
          {dname, "hybrid-rmi", TablePrinter::FormatDouble(ns, 0),
           "btree_partitions=" +
               TablePrinter::FormatCount(index.NumBtreePartitions())});
    }
    {
      PgmIndex<uint64_t, uint64_t> index;
      index.Build(keys, values);
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      table.AddRow({dname, "pgm (eps=64)", TablePrinter::FormatDouble(ns, 0),
                    "segments=" +
                        TablePrinter::FormatCount(index.NumSegments())});
    }
    {
      AlexIndex<uint64_t, uint64_t> index;
      index.BulkLoad(keys, values);
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += index.Find(lookups[i]).value_or(0);
      });
      table.AddRow({dname, "alex", TablePrinter::FormatDouble(ns, 0),
                    "adaptive layout"});
    }
    DoNotOptimize(sink);
  }
  table.Print();
  return 0;
}
