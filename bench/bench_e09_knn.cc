// E9 — kNN queries across index classes.
//
// Tutorial claim (§5.6): query-type support differs across learned
// multi-dimensional indexes — the ML-index is the class representative
// with native kNN (iDistance annuli), LISA reaches kNN via expanding range
// queries, while traditional kd-tree/R-tree support it directly. Expected
// shape: kd-tree/R-tree win at small k; the ML-index stays within a small
// factor and scales smoothly with k; expanding-range kNN pays a
// re-scanning penalty at large k.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/lisa.h"
#include "multi_d/ml_index.h"
#include "spatial/kdtree.h"
#include "spatial/rtree.h"

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E9: kNN queries (1M clustered points, 2K queries)",
      "kNN support across classes: native (kd/R-tree), projected learned "
      "(ML-index), expanding-range (LISA)");

  constexpr size_t kNumPoints = 1'000'000;
  constexpr size_t kNumQueries = 2'000;

  const auto points = GeneratePoints(PointDistribution::kGaussianClusters,
                                     kNumPoints, 8888);
  const auto queries = GenerateKnnQueries(points, kNumQueries, 9999);

  KdTree kdtree;
  kdtree.Build(points);
  RTree rtree;
  rtree.BulkLoad(points);
  MlIndex ml;
  ml.Build(points);
  LisaIndex lisa;
  lisa.Build(points);

  TablePrinter table({"k", "kd-tree us", "r-tree us", "ml-index us",
                      "lisa us"});
  for (size_t k : {1u, 10u, 100u}) {
    uint64_t sink = 0;
    Timer t1;
    for (const Point2D& q : queries) sink += kdtree.Knn(q, k).size();
    const double kd_us = t1.ElapsedSeconds() * 1e6 / kNumQueries;
    Timer t2;
    for (const Point2D& q : queries) sink += rtree.Knn(q, k).size();
    const double rt_us = t2.ElapsedSeconds() * 1e6 / kNumQueries;
    Timer t3;
    for (const Point2D& q : queries) sink += ml.Knn(q, k).size();
    const double ml_us = t3.ElapsedSeconds() * 1e6 / kNumQueries;
    Timer t4;
    for (const Point2D& q : queries) sink += lisa.Knn(q, k).size();
    const double li_us = t4.ElapsedSeconds() * 1e6 / kNumQueries;
    DoNotOptimize(sink);
    table.AddRow({std::to_string(k), TablePrinter::FormatDouble(kd_us, 1),
                  TablePrinter::FormatDouble(rt_us, 1),
                  TablePrinter::FormatDouble(ml_us, 1),
                  TablePrinter::FormatDouble(li_us, 1)});
  }
  table.Print();
  return 0;
}
