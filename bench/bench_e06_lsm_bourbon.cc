// E6 — BOURBON-style learned indexes inside an LSM-tree.
//
// Tutorial claim (§4.2, §5.6): LSM runs are immutable between compactions,
// so cheap per-run learned models (trained at compaction time) replace the
// in-run binary search and cut point-lookup cost; Bloom filters already
// screen most negative probes, so the win concentrates on hits. Expected
// shape: learned mode does several times fewer in-run search steps and
// meaningfully lower hit latency, at a model cost of a few bytes per key.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "lsm/lsm_tree.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 2'000'000;
constexpr size_t kNumLookups = 300'000;

std::vector<bench::JsonRow> g_json;

void RunMode(RunSearchMode mode, const char* name,
             const std::vector<std::pair<uint64_t, uint64_t>>& inserts,
             const std::vector<uint64_t>& hits,
             const std::vector<uint64_t>& misses, TablePrinter* table) {
  LsmTree<uint64_t, uint64_t>::Options opts;
  opts.memtable_limit = 64 * 1024;
  opts.l0_run_limit = 4;
  opts.search_mode = mode;
  LsmTree<uint64_t, uint64_t> lsm(opts);
  const double load_ms = bench::MeasureMs([&] {
    for (const auto& [key, value] : inserts) lsm.Put(key, value);
    lsm.Flush();
  });

  uint64_t sink = 0;
  lsm.ResetStats();
  const double ns_hit = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lsm.Get(hits[i]).value_or(0);
  });
  const double steps_per_hit =
      static_cast<double>(lsm.stats().search_steps) /
      static_cast<double>(lsm.stats().run_probes ? lsm.stats().run_probes
                                                 : 1);
  lsm.ResetStats();
  const double ns_miss = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lsm.Get(misses[i]).has_value();
  });
  // Hit-latency tail: per-lookup samples over a smaller draw, since a
  // Timer per Get is itself measurable.
  std::vector<double> lat;
  lat.reserve(kNumLookups / 4);
  for (size_t i = 0; i < kNumLookups / 4; ++i) {
    Timer t;
    sink += lsm.Get(hits[i]).value_or(0);
    lat.push_back(static_cast<double>(t.ElapsedNanos()));
  }
  DoNotOptimize(sink);
  const double p50 = bench::Percentile(&lat, 50);
  const double p99 = bench::Percentile(&lat, 99);

  table->AddRow({name, TablePrinter::FormatDouble(load_ms, 0),
                 std::to_string(lsm.NumRuns()),
                 TablePrinter::FormatDouble(ns_hit, 0),
                 TablePrinter::FormatDouble(p99, 0),
                 TablePrinter::FormatDouble(ns_miss, 0),
                 TablePrinter::FormatDouble(steps_per_hit, 1),
                 TablePrinter::FormatBytes(lsm.ModelSizeBytes())});
  g_json.push_back({bench::JsonField::Str("run_search", name),
                    bench::JsonField::Num("load_ms", load_ms),
                    bench::JsonField::Num("runs", lsm.NumRuns()),
                    bench::JsonField::Num("ns_per_hit", ns_hit),
                    bench::JsonField::Num("p50_hit_ns", p50),
                    bench::JsonField::Num("p99_hit_ns", p99),
                    bench::JsonField::Num("ns_per_miss", ns_miss),
                    bench::JsonField::Num("steps_per_probe", steps_per_hit),
                    bench::JsonField::Num("model_bytes",
                                          lsm.ModelSizeBytes())});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E6: learned per-run indexes in an LSM-tree (2M keys)",
      "BOURBON: per-run learned models cut in-run search steps vs binary "
      "search (WiscKey baseline)");

  const bench::Dataset1D data =
      bench::MakeDataset1D(KeyDistribution::kUniform, kNumKeys, 1111);
  // Insert in random order to exercise compaction realistically.
  std::vector<std::pair<uint64_t, uint64_t>> inserts = bench::ToPairs(data);
  Rng rng(2222);
  for (size_t i = inserts.size(); i > 1; --i) {
    std::swap(inserts[i - 1], inserts[rng.NextBounded(i)]);
  }
  const auto hits = GenerateLookupKeys(data.keys, kNumLookups, 0.0, 0.0, 19);
  const auto misses = GenerateLookupKeys(data.keys, kNumLookups, 0.0, 1.0, 23);

  TablePrinter table({"run_search", "load_ms", "runs", "ns/hit", "p99/hit",
                      "ns/miss", "steps/probe", "model_bytes"});
  RunMode(RunSearchMode::kBinarySearch, "binary-search (WiscKey)", inserts,
          hits, misses, &table);
  RunMode(RunSearchMode::kLearned, "learned (BOURBON)", inserts, hits,
          misses, &table);
  table.Print();

  bench::ReportJson("e06_lsm_bourbon", g_json,
                    {bench::JsonField::Num("num_keys", kNumKeys),
                     bench::JsonField::Num("num_lookups", kNumLookups)});
  return 0;
}
