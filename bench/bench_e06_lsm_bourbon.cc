// E6 — BOURBON-style learned indexes inside an LSM-tree.
//
// Tutorial claim (§4.2, §5.6): LSM runs are immutable between compactions,
// so cheap per-run learned models (trained at compaction time) replace the
// in-run binary search and cut point-lookup cost; Bloom filters already
// screen most negative probes, so the win concentrates on hits. Expected
// shape: learned mode does several times fewer in-run search steps and
// meaningfully lower hit latency, at a model cost of a few bytes per key.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "lsm/lsm_tree.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 2'000'000;
constexpr size_t kNumLookups = 300'000;

void RunMode(RunSearchMode mode, const char* name,
             const std::vector<uint64_t>& keys,
             const std::vector<uint64_t>& hits,
             const std::vector<uint64_t>& misses, TablePrinter* table) {
  LsmTree<uint64_t, uint64_t>::Options opts;
  opts.memtable_limit = 64 * 1024;
  opts.l0_run_limit = 4;
  opts.search_mode = mode;
  LsmTree<uint64_t, uint64_t> lsm(opts);
  const double load_ms = bench::MeasureMs([&] {
    for (size_t i = 0; i < keys.size(); ++i) lsm.Put(keys[i], i);
    lsm.Flush();
  });

  uint64_t sink = 0;
  lsm.ResetStats();
  const double ns_hit = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lsm.Get(hits[i]).value_or(0);
  });
  const double steps_per_hit =
      static_cast<double>(lsm.stats().search_steps) /
      static_cast<double>(lsm.stats().run_probes ? lsm.stats().run_probes
                                                 : 1);
  lsm.ResetStats();
  const double ns_miss = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
    sink += lsm.Get(misses[i]).has_value();
  });
  DoNotOptimize(sink);

  table->AddRow({name, TablePrinter::FormatDouble(load_ms, 0),
                 std::to_string(lsm.NumRuns()),
                 TablePrinter::FormatDouble(ns_hit, 0),
                 TablePrinter::FormatDouble(ns_miss, 0),
                 TablePrinter::FormatDouble(steps_per_hit, 1),
                 TablePrinter::FormatBytes(lsm.ModelSizeBytes())});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E6: learned per-run indexes in an LSM-tree (2M keys)",
      "BOURBON: per-run learned models cut in-run search steps vs binary "
      "search (WiscKey baseline)");

  const auto keys = GenerateKeys(KeyDistribution::kUniform, kNumKeys, 1111);
  // Insert in random order to exercise compaction realistically.
  std::vector<uint64_t> shuffled = keys;
  Rng rng(2222);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  const auto hits = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 19);
  const auto misses = GenerateLookupKeys(keys, kNumLookups, 0.0, 1.0, 23);

  TablePrinter table({"run_search", "load_ms", "runs", "ns/hit", "ns/miss",
                      "steps/probe", "model_bytes"});
  RunMode(RunSearchMode::kBinarySearch, "binary-search (WiscKey)", shuffled,
          hits, misses, &table);
  RunMode(RunSearchMode::kLearned, "learned (BOURBON)", shuffled, hits,
          misses, &table);
  table.Print();
  return 0;
}
