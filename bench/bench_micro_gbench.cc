// Google-benchmark micro suite: per-operation lookup latencies with
// statistically robust iteration control, complementing the table
// harnesses (E1-E14) that reproduce the tutorial's comparative claims.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "baselines/btree.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/alex.h"
#include "one_d/lipp.h"
#include "one_d/pgm.h"
#include "one_d/radix_spline.h"
#include "one_d/rmi.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 1'000'000;

struct Shared {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  std::vector<uint64_t> lookups;

  Shared() {
    keys = GenerateKeys(KeyDistribution::kLognormal, kNumKeys, 3131);
    values.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    lookups = GenerateLookupKeys(keys, 1 << 20, 0.0, 0.25, 31);
  }
};

const Shared& GetShared() {
  static const Shared* shared = new Shared();
  return *shared;
}

void BM_BtreeLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  BPlusTree<uint64_t, uint64_t> tree;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (size_t i = 0; i < s.keys.size(); ++i) {
    pairs.emplace_back(s.keys[i], i);
  }
  tree.BulkLoad(pairs);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_BtreeLookup);

void BM_RmiLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  Rmi<uint64_t, uint64_t> index;
  index.Build(s.keys, s.values);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_RmiLookup);

void BM_PgmLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  PgmIndex<uint64_t, uint64_t> index;
  index.Build(s.keys, s.values);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_PgmLookup);

void BM_RadixSplineLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  RadixSpline<uint64_t, uint64_t> index;
  index.Build(s.keys, s.values);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_RadixSplineLookup);

void BM_AlexLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  AlexIndex<uint64_t, uint64_t> index;
  index.BulkLoad(s.keys, s.values);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_AlexLookup);

void BM_LippLookup(benchmark::State& state) {
  const Shared& s = GetShared();
  LippIndex<uint64_t, uint64_t> index;
  index.BulkLoad(s.keys, s.values);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Find(s.lookups[i++ & (s.lookups.size() - 1)]));
  }
}
BENCHMARK(BM_LippLookup);

void BM_AlexInsert(benchmark::State& state) {
  const Shared& s = GetShared();
  AlexIndex<uint64_t, uint64_t> index;
  index.BulkLoad(s.keys, s.values);
  uint64_t k = 1;
  for (auto _ : state) {
    index.Insert(k * 2654435761u, k);
    ++k;
  }
}
BENCHMARK(BM_AlexInsert);

void BM_LippInsert(benchmark::State& state) {
  const Shared& s = GetShared();
  LippIndex<uint64_t, uint64_t> index;
  index.BulkLoad(s.keys, s.values);
  uint64_t k = 1;
  for (auto _ : state) {
    index.Insert(k * 2654435761u, k);
    ++k;
  }
}
BENCHMARK(BM_LippInsert);

}  // namespace
}  // namespace lidx

BENCHMARK_MAIN();
