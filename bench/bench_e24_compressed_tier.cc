// E24 — Compressed learned pages and the hybrid DRAM/disk tiered index.
//
// Claim under test (tutorial §4.2/§5 disk-based systems + the LeCo/learned-
// compression line): learned models compose with page compression. A
// per-page linear fit turns sorted keys into narrow residuals, so
// fixed-width bit-packing multiplies keys-per-page; the run's ε-bounded
// model means a lookup decompresses only the ε-window slice of one page,
// so the decode cost stays O(ε) while every buffer-pool frame now caches
// several pages' worth of keys. Serving a dataset larger than the pool,
// that footprint reduction converts directly into hit rate and cold-cache
// throughput.
//
// Sections:
//   1. Codec comparison at matched ε (plain / FOR / delta DiskRun +
//      DiskPgmTable reference): keys/page, bytes/key, pages and decoded
//      records per lookup, warm latency. Gates (at full size):
//      delta keys/page >= 2.5x plain, and byte-identical results across
//      codecs on both the scalar and async batched paths.
//   2. Larger-than-pool serve at equal pool frames, OS cache dropped:
//      compressed runs must beat plain on cold lookup throughput
//      (gate: >= 1.5x, enforced at full size when the cache drop works).
//   3. TieredIndex end-to-end: random inserts absorbed by the hot tier,
//      migrations into compressed cold runs, erases as tombstones, mixed
//      hot/cold probes, with value-scheme verification.
//
// Usage: bench_e24_compressed_tier [num_keys]  (default 2M; CI smoke: 20000)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/invariants.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "lsm/run.h"
#include "one_d/tiered_index.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_pgm_table.h"
#include "storage/disk_run.h"
#include "storage/file_manager.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_codec.h"

namespace lidx::storage {
namespace {

std::vector<bench::JsonRow> g_json;

// Gates only bite at representative size; the CI smoke run (20k keys)
// still executes every code path and the byte-identical checks.
constexpr size_t kEnforceMinKeys = 200'000;

std::string ScratchFile(const std::string& tag) {
  const std::string path = "bench_e24_" + tag + ".pagefile";
  std::remove(path.c_str());
  return path;
}

const char* CodecName(PageCodec codec) {
  switch (codec) {
    case PageCodec::kPlain:
      return "plain";
    case PageCodec::kFor:
      return "for";
    case PageCodec::kDelta:
      return "delta";
  }
  return "?";
}

// Half hits, half misses: compression must not perturb either path.
std::vector<uint64_t> SampleMixed(const std::vector<uint64_t>& keys, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < out.size(); ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    out[i] = (i % 2 == 0) ? k : k + 1;  // k+1 is a miss unless also a key.
  }
  return out;
}

// ----- Section 1: codec comparison at matched ε -----

struct CodecResult {
  double keys_per_page = 0;
  std::vector<std::optional<RunEntry<uint64_t>>> found;
};

void RunCodecComparison(const bench::Dataset1D& data,
                        const std::vector<uint64_t>& lookups, size_t epsilon,
                        bool enforce) {
  std::printf("\n-- codec comparison at epsilon=%zu --\n", epsilon);
  TablePrinter table({"codec", "keys/page", "pages", "bytes/key",
                      "packed_frac", "pages/get", "decoded/get",
                      "partial_frac", "ns/get"});
  std::vector<std::pair<uint64_t, RunEntry<uint64_t>>> entries(
      data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    entries[i] = {data.keys[i], RunEntry<uint64_t>{data.values[i], false}};
  }
  CodecResult plain_result;
  for (const PageCodec codec :
       {PageCodec::kPlain, PageCodec::kFor, PageCodec::kDelta}) {
    const std::string path = ScratchFile("codec");
    FileManager file(path);
    BufferPool pool(&file, data.keys.size() / 64 + 64);  // Warm-cache pool.
    typename DiskRun<uint64_t, uint64_t>::Options opts;
    opts.learned_epsilon = epsilon;
    opts.codec = codec;
    DiskRun<uint64_t, uint64_t> run(entries, &file, &pool, opts);
    const size_t file_bytes = bench::FileSizeBytes(path);
    const double bytes_per_key =
        bench::BytesPerKey(file_bytes, data.keys.size());
    const double packed_frac = static_cast<double>(run.NumPackedPages()) /
                               static_cast<double>(run.NumPages());
    // Counted pass: I/O + decode work per lookup.
    DiskIoStats io;
    pool.ResetStats();
    CodecResult result;
    result.keys_per_page = run.KeysPerPage();
    result.found.resize(lookups.size());
    for (size_t i = 0; i < lookups.size(); ++i) {
      result.found[i] = run.Get(lookups[i], &io);
    }
    const double n_lookups = static_cast<double>(lookups.size());
    const double pages_per_get =
        static_cast<double>(io.pages_touched) / n_lookups;
    const double decoded_per_get =
        static_cast<double>(io.records_decoded) / n_lookups;
    const double partial_frac =
        io.partial_decodes == 0
            ? 0.0
            : static_cast<double>(io.partial_decodes) /
                  static_cast<double>(io.pages_touched);
    const BufferPoolStats pstats = pool.stats();
    // Async batched path must agree byte-for-byte with scalar.
    const auto engine = AsyncReadEngine::Create(IoBackend::kAuto, 32);
    std::vector<std::optional<RunEntry<uint64_t>>> batched(lookups.size());
    run.GetBatch(lookups.data(), lookups.size(), engine.get(), batched.data(),
                 nullptr);
    for (size_t i = 0; i < lookups.size(); ++i) {
      LIDX_CHECK(batched[i].has_value() == result.found[i].has_value());
      if (batched[i].has_value()) {
        LIDX_CHECK(batched[i]->value == result.found[i]->value &&
                   batched[i]->deleted == result.found[i]->deleted);
      }
    }
    // Warm timing pass.
    const double ns = bench::MeasureNsPerOp(lookups.size(), [&](size_t i) {
      DoNotOptimize(run.Get(lookups[i], nullptr));
    });
    table.AddRow({CodecName(codec),
                  TablePrinter::FormatDouble(result.keys_per_page, 1),
                  std::to_string(run.NumPages()),
                  TablePrinter::FormatDouble(bytes_per_key, 2),
                  TablePrinter::FormatDouble(packed_frac, 3),
                  TablePrinter::FormatDouble(pages_per_get, 3),
                  TablePrinter::FormatDouble(decoded_per_get, 1),
                  TablePrinter::FormatDouble(partial_frac, 3),
                  TablePrinter::FormatDouble(ns, 0)});
    g_json.push_back(
        {bench::JsonField::Str("section", "codec_comparison"),
         bench::JsonField::Str("codec", CodecName(codec)),
         bench::JsonField::Num("epsilon", epsilon),
         bench::JsonField::Num("keys_per_page", result.keys_per_page),
         bench::JsonField::Num("num_pages", run.NumPages()),
         bench::JsonField::Num("bytes_per_key", bytes_per_key),
         bench::JsonField::Num("packed_fraction", packed_frac),
         bench::JsonField::Num("pages_per_get", pages_per_get),
         bench::JsonField::Num("records_decoded_per_get", decoded_per_get),
         bench::JsonField::Num("partial_decode_fraction", partial_frac),
         bench::JsonField::Num("decompressed_bytes",
                               pstats.decompressed_bytes),
         bench::JsonField::Num("ns_per_get", ns)});
    if (codec == PageCodec::kPlain) {
      plain_result = std::move(result);
      LIDX_CHECK(run.NumPackedPages() == 0);
    } else {
      // Byte-identical results across codecs, hit and miss alike.
      for (size_t i = 0; i < lookups.size(); ++i) {
        LIDX_CHECK(result.found[i].has_value() ==
                   plain_result.found[i].has_value());
        if (result.found[i].has_value()) {
          LIDX_CHECK(result.found[i]->value == plain_result.found[i]->value);
        }
      }
      if (enforce && codec == PageCodec::kDelta) {
        // The tentpole's space gate: sorted-key delta packing must carry
        // at least 2.5x the keys per page that the plain layout does.
        LIDX_CHECK(result.keys_per_page >=
                   2.5 * plain_result.keys_per_page);
      }
    }
  }
  // DiskPgmTable reference: the uncompressed learned-paged baseline at the
  // same ε (different record layout: no tombstone byte).
  {
    const std::string path = ScratchFile("pgmref");
    FileManager file(path);
    BufferPool pool(&file, data.keys.size() / 64 + 64);
    typename DiskPgmTable<uint64_t, uint64_t>::Options opts;
    opts.mode = DiskSearchMode::kLearned;
    opts.epsilon = epsilon;
    DiskPgmTable<uint64_t, uint64_t> ref(data.keys, data.values, &file, &pool,
                                         opts);
    DiskIoStats io;
    uint64_t sink = 0;
    for (const uint64_t k : lookups) sink += ref.Find(k, &io).value_or(0);
    DoNotOptimize(sink);
    const double pages_per_get =
        static_cast<double>(io.pages_touched) /
        static_cast<double>(lookups.size());
    const double bytes_per_key =
        bench::BytesPerKey(bench::FileSizeBytes(path), data.keys.size());
    table.AddRow({"pgm-ref",
                  TablePrinter::FormatDouble(
                      static_cast<double>(
                          DiskPgmTable<uint64_t, uint64_t>::kRecordsPerPage),
                      1),
                  "-", TablePrinter::FormatDouble(bytes_per_key, 2), "0.000",
                  TablePrinter::FormatDouble(pages_per_get, 3), "-", "-",
                  "-"});
    g_json.push_back(
        {bench::JsonField::Str("section", "codec_comparison"),
         bench::JsonField::Str("codec", "pgm-ref"),
         bench::JsonField::Num("epsilon", epsilon),
         bench::JsonField::Num(
             "keys_per_page",
             static_cast<double>(
                 DiskPgmTable<uint64_t, uint64_t>::kRecordsPerPage)),
         bench::JsonField::Num("bytes_per_key", bytes_per_key),
         bench::JsonField::Num("pages_per_get", pages_per_get)});
  }
  table.Print();
}

// ----- Section 2: larger-than-pool serve, OS cache dropped -----

void RunColdServe(const bench::Dataset1D& data,
                  const std::vector<uint64_t>& lookups, size_t epsilon,
                  bool enforce) {
  std::printf("\n-- larger-than-pool serve at equal pool frames --\n");
  TablePrinter table({"codec", "pages", "pool_frames", "hit_rate",
                      "cold_mops", "batched_mops"});
  std::vector<std::pair<uint64_t, RunEntry<uint64_t>>> entries(
      data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    entries[i] = {data.keys[i], RunEntry<uint64_t>{data.values[i], false}};
  }
  const size_t plain_pages =
      (data.keys.size() +
       DiskRun<uint64_t, uint64_t>::kRecordsPerPage - 1) /
      DiskRun<uint64_t, uint64_t>::kRecordsPerPage;
  // Equal pool on both sides, sized well below the plain footprint so the
  // workload does not fit: this is where fewer pages become hit rate.
  const size_t pool_frames = std::max<size_t>(16, plain_pages / 8);
  double plain_mops = 0.0;
  bool all_drops_ok = true;
  for (const PageCodec codec : {PageCodec::kPlain, PageCodec::kDelta}) {
    const std::string path = ScratchFile("serve");
    FileManager file(path);
    BufferPool pool(&file, pool_frames);
    typename DiskRun<uint64_t, uint64_t>::Options opts;
    opts.learned_epsilon = epsilon;
    opts.codec = codec;
    DiskRun<uint64_t, uint64_t> run(entries, &file, &pool, opts);
    all_drops_ok = file.DropOsCache() && all_drops_ok;
    uint64_t sink = 0;
    Timer cold_timer;
    for (const uint64_t k : lookups) {
      sink += run.Get(k, nullptr).value_or(RunEntry<uint64_t>{}).value;
    }
    DoNotOptimize(sink);
    const double cold_mops =
        static_cast<double>(lookups.size()) /
        cold_timer.ElapsedSeconds() / 1e6;
    const BufferPoolStats pstats = pool.stats();
    const double hit_rate =
        pstats.hits + pstats.misses == 0
            ? 0.0
            : static_cast<double>(pstats.hits) /
                  static_cast<double>(pstats.hits + pstats.misses);
    // Batched pass over the same stream, pool re-cooled: the interleaved
    // path overlaps the misses instead of paying them serially.
    pool.ResetStats();
    all_drops_ok = file.DropOsCache() && all_drops_ok;
    // The pin stream holds up to queue_depth frames at once; stay under
    // the (deliberately small) pool.
    const auto engine = AsyncReadEngine::Create(
        IoBackend::kAuto, std::min<size_t>(32, pool_frames / 2));
    std::vector<std::optional<RunEntry<uint64_t>>> out(lookups.size());
    Timer batched_timer;
    run.GetBatch(lookups.data(), lookups.size(), engine.get(), out.data(),
                 nullptr);
    const double batched_mops =
        static_cast<double>(lookups.size()) /
        batched_timer.ElapsedSeconds() / 1e6;
    table.AddRow({CodecName(codec), std::to_string(run.NumPages()),
                  std::to_string(pool_frames),
                  TablePrinter::FormatDouble(hit_rate, 3),
                  TablePrinter::FormatDouble(cold_mops, 3),
                  TablePrinter::FormatDouble(batched_mops, 3)});
    g_json.push_back(
        {bench::JsonField::Str("section", "cold_serve"),
         bench::JsonField::Str("codec", CodecName(codec)),
         bench::JsonField::Num("num_pages", run.NumPages()),
         bench::JsonField::Num("pool_frames", pool_frames),
         bench::JsonField::Num("hit_rate", hit_rate),
         bench::JsonField::Num("cold_mops", cold_mops),
         bench::JsonField::Num("batched_mops", batched_mops)});
    if (codec == PageCodec::kPlain) {
      plain_mops = cold_mops;
    } else if (enforce && all_drops_ok) {
      // The tentpole's serve gate: at equal pool frames over a
      // larger-than-pool dataset, compression must buy >= 1.5x cold
      // throughput.
      LIDX_CHECK(cold_mops >= 1.5 * plain_mops);
    }
  }
  if (!all_drops_ok) {
    std::printf("note: posix_fadvise(DONTNEED) unsupported here — 'cold' "
                "rows include OS cache hits and the serve gate is off\n");
  }
  table.Print();
}

// ----- Section 3: tiered index end-to-end -----

void RunTiered(const bench::Dataset1D& data, bool enforce) {
  const size_t n = data.keys.size();
  std::printf("\n-- tiered index: hot tier over compressed cold runs --\n");
  // Random insertion order exercises migrations realistically.
  std::vector<uint64_t> shuffled = data.keys;
  Rng rng(2424);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  const std::string path = ScratchFile("tiered");
  typename TieredIndex<uint64_t, uint64_t>::Options opts;
  opts.hot_limit = std::max<size_t>(4096, n / 16);
  opts.cold_run_limit = 4;
  opts.pool_frames = std::max<size_t>(64, n / 239 / 8);
  opts.codec = PageCodec::kDelta;
  opts.background_migration = true;
  TieredIndex<uint64_t, uint64_t> tiered(path, opts);
  const double load_ms = bench::MeasureMs([&] {
    for (const uint64_t k : shuffled) tiered.Insert(k, k ^ 0x9E3779B9u);
    tiered.FlushHot();
  });
  // Every key findable with its value after full migration; erased keys
  // tombstone away even when the base version is already on disk.
  const size_t sample = std::min<size_t>(n / 2, 50'000);
  for (size_t i = 0; i < sample; ++i) {
    const uint64_t k = data.keys[rng.NextBounded(n)];
    const std::optional<uint64_t> v = tiered.Find(k);
    LIDX_CHECK(v.has_value() && *v == (k ^ 0x9E3779B9u));
  }
  for (size_t i = 0; i < sample / 8; ++i) {
    tiered.Erase(data.keys[i * 8]);
  }
  for (size_t i = 0; i < sample / 8; ++i) {
    LIDX_CHECK(!tiered.Find(data.keys[i * 8]).has_value());
  }
  // Mixed probes: half of them land in the hot tier (fresh re-inserts),
  // half must go through bloom + compressed runs.
  std::vector<uint64_t> probes(std::min<size_t>(n, 200'000));
  for (size_t i = 0; i < probes.size(); ++i) {
    probes[i] = data.keys[sample + rng.NextBounded(n - sample)];
  }
  DiskIoStats io;
  const double find_ns = bench::MeasureNsPerOp(probes.size(), [&](size_t i) {
    DoNotOptimize(tiered.Find(probes[i], &io));
  });
  std::vector<std::pair<uint64_t, uint64_t>> scan;
  tiered.RangeScan(data.keys[n / 2], data.keys[n / 2 + 100], &scan);
  LIDX_CHECK(!scan.empty());
  tiered.CheckInvariants();
  const size_t file_bytes = bench::FileSizeBytes(path);
  const double bytes_per_key = bench::BytesPerKey(file_bytes, n);
  const auto runs = tiered.ColdRuns();
  double keys_per_page = 0.0;
  size_t cold_pages = 0;
  for (const auto& run : runs) cold_pages += run->NumPages();
  if (cold_pages > 0) {
    keys_per_page = static_cast<double>(tiered.ColdSize()) /
                    static_cast<double>(cold_pages);
  }
  if (enforce) {
    LIDX_CHECK(runs.size() <= opts.cold_run_limit);
    LIDX_CHECK(keys_per_page >= 2.5 * 239.0);  // Plain layout: 239/page.
  }
  TablePrinter table({"load_ms", "hot", "cold", "runs", "keys/page",
                      "bytes/key", "mem_bytes/key", "find_ns",
                      "decoded/get"});
  const double decoded_per_get =
      static_cast<double>(io.records_decoded) /
      static_cast<double>(probes.size());
  table.AddRow(
      {TablePrinter::FormatDouble(load_ms, 0),
       std::to_string(tiered.HotSize()), std::to_string(tiered.ColdSize()),
       std::to_string(runs.size()), TablePrinter::FormatDouble(keys_per_page, 1),
       TablePrinter::FormatDouble(bytes_per_key, 2),
       TablePrinter::FormatDouble(
           static_cast<double>(tiered.SizeBytes()) / static_cast<double>(n),
           2),
       TablePrinter::FormatDouble(find_ns, 0),
       TablePrinter::FormatDouble(decoded_per_get, 1)});
  table.Print();
  g_json.push_back(
      {bench::JsonField::Str("section", "tiered"),
       bench::JsonField::Num("load_ms", load_ms),
       bench::JsonField::Num("hot_size", tiered.HotSize()),
       bench::JsonField::Num("cold_size", tiered.ColdSize()),
       bench::JsonField::Num("cold_runs", runs.size()),
       bench::JsonField::Num("keys_per_page", keys_per_page),
       bench::JsonField::Num("bytes_per_key", bytes_per_key),
       bench::JsonField::Num("mem_bytes_per_key",
                             static_cast<double>(tiered.SizeBytes()) /
                                 static_cast<double>(n)),
       bench::JsonField::Num("find_ns", find_ns),
       bench::JsonField::Num("records_decoded_per_get", decoded_per_get)});
}

}  // namespace
}  // namespace lidx::storage

int main(int argc, char** argv) {
  using namespace lidx;
  using namespace lidx::storage;
  const size_t n =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 2'000'000;
  const size_t epsilon = 16;
  const bool enforce = n >= kEnforceMinKeys;
  bench::PrintHeader(
      "E24: compressed learned pages + tiered serving (" +
          std::to_string(n) + " lognormal keys, eps=" +
          std::to_string(epsilon) + ")",
      "per-page models turn sorted keys into narrow packed residuals; the "
      "run's eps-window bounds decode cost, and fewer pages become buffer-"
      "pool hit rate when the dataset outgrows the pool");
  if (!enforce) {
    std::printf("note: %zu keys < %zu — acceptance gates are off (smoke "
                "run)\n", n, kEnforceMinKeys);
  }
  const bench::Dataset1D data = bench::MakeDataset1D(
      KeyDistribution::kLognormal, n, 4242, bench::ValueScheme::kRank);
  const auto lookups =
      SampleMixed(data.keys, std::min<size_t>(n, 200'000), 77);

  RunCodecComparison(data, lookups, epsilon, enforce);
  RunColdServe(data, lookups, epsilon, enforce);
  RunTiered(data, enforce);

  bench::ReportJson("e24_compressed_tier", g_json,
                    {bench::JsonField::Num("num_keys", n),
                     bench::JsonField::Num("epsilon", epsilon),
                     bench::JsonField::Num("page_size", kPageSize),
                     bench::JsonField::Str("gates",
                                           enforce ? "enforced" : "off")});
  for (const char* tag : {"codec", "pgmref", "serve", "tiered"}) {
    std::remove(("bench_e24_" + std::string(tag) + ".pagefile").c_str());
  }
  return 0;
}
