// E7 — Multi-dimensional point queries: learned vs traditional.
//
// Tutorial claim (§5): learned multi-dimensional indexes answer point
// queries faster and smaller than the R-tree by replacing tree descent
// with model evaluation; the AI+R-tree shows the hybrid route (learned
// leaf routing over an unchanged R-tree). Expected shape: ZM/Flood/ML
// beat the R-tree and quadtree on point lookups; the uniform grid is
// competitive on uniform data but degrades under skew, which is exactly
// the gap learned layouts close.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "multi_d/airtree.h"
#include "multi_d/flood.h"
#include "multi_d/lisa.h"
#include "multi_d/ml_index.h"
#include "multi_d/zm_index.h"
#include "spatial/grid.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 1'000'000;
constexpr size_t kNumQueries = 100'000;

template <typename BuildFn, typename QueryFn, typename BytesFn>
void Run(TablePrinter* table, const std::string& dist,
         const std::string& name, const std::vector<Point2D>& queries,
         BuildFn build, QueryFn query, BytesFn bytes) {
  const double build_ms = bench::MeasureMs(build);
  uint64_t sink = 0;
  const double ns = bench::MeasureNsPerOp(kNumQueries, [&](size_t i) {
    sink += query(queries[i]);
  });
  DoNotOptimize(sink);
  table->AddRow({dist, name, TablePrinter::FormatDouble(build_ms, 0),
                 TablePrinter::FormatDouble(ns, 0),
                 TablePrinter::FormatBytes(bytes())});
}

void RunDistribution(PointDistribution dist, TablePrinter* table) {
  const auto points = GeneratePoints(dist, kNumPoints, 3333);
  // Queries: existing points (hits).
  std::vector<Point2D> queries;
  queries.reserve(kNumQueries);
  Rng rng(4444);
  for (size_t i = 0; i < kNumQueries; ++i) {
    queries.push_back(points[rng.NextBounded(points.size())]);
  }
  const std::string dname = PointDistributionName(dist);

  {
    RTree index;
    Run(table, dname, "r-tree", queries, [&] { index.BulkLoad(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    KdTree index;
    Run(table, dname, "kd-tree", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    QuadTree index;
    Run(table, dname, "quadtree", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    UniformGrid index(256);
    Run(table, dname, "uniform-grid", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    ZmIndex index;
    Run(table, dname, "zm-index", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    FloodIndex index;
    FloodIndex::Options opts;
    opts.num_columns = 256;
    Run(table, dname, "flood", queries,
        [&] { index.Build(points, {}, opts); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    MlIndex index;
    Run(table, dname, "ml-index", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    LisaIndex index;
    Run(table, dname, "lisa", queries, [&] { index.Build(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
  {
    AiRTree index;
    Run(table, dname, "ai+r-tree", queries, [&] { index.BulkLoad(points); },
        [&](const Point2D& p) { return index.FindExact(p).size(); },
        [&] { return index.SizeBytes(); });
  }
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E7: 2-D point queries (1M points, 100K queries)",
      "learned multi-dimensional indexes beat R-tree/quadtree on point "
      "lookups; grids degrade under skew");
  TablePrinter table({"dist", "index", "build_ms", "ns/query", "size"});
  for (PointDistribution dist :
       {PointDistribution::kUniform2D, PointDistribution::kGaussianClusters,
        PointDistribution::kSkewedGrid}) {
    RunDistribution(dist, &table);
  }
  table.Print();
  return 0;
}
