// E15 — Learned models as hash functions.
//
// Tutorial context (§6.8-adjacent line of work: Sabek et al., "Can Learned
// Models Replace Hash Functions?"): a CDF model can serve as an
// order-preserving hash. When the model fits, occupancy matches a random
// hash (Poisson) with two multiply-adds instead of a mixing function, and
// the layout is monotone (short range scans become bucket-local). The
// known failure mode: the model is trained once, so post-build inserts
// from a *different* distribution skew the occupancy — measured here as
// the drifted-load column.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/learned_hash.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 1'000'000;
constexpr size_t kNumLookups = 300'000;

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E15: learned hashing vs std::unordered_map (1M keys)",
      "a learned CDF spreads keys like a random hash (variance ~1) while "
      "staying order-preserving; drifted inserts skew it");

  TablePrinter table({"dist", "map", "ns/hit", "load_var", "max_chain",
                      "load_var_after_drift"});
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kClustered,
        KeyDistribution::kLognormal}) {
    const auto keys = GenerateKeys(dist, kNumKeys, 5151);
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = i;
    const auto hits = GenerateLookupKeys(keys, kNumLookups, 0.0, 0.0, 43);
    // Drift: keys from a different distribution, inserted after build.
    const auto drift_keys =
        GenerateKeys(dist == KeyDistribution::kUniform
                         ? KeyDistribution::kClustered
                         : KeyDistribution::kUniform,
                     kNumKeys / 4, 5252);

    {
      LearnedHashMap<uint64_t, uint64_t> map;
      map.BulkLoad(keys, values);
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        sink += map.Find(hits[i]).value_or(0);
      });
      DoNotOptimize(sink);
      const double var_before = map.LoadVariance();
      const size_t chain_before = map.MaxChainLength();
      for (size_t i = 0; i < drift_keys.size(); ++i) {
        map.Insert(drift_keys[i], i);
      }
      table.AddRow({KeyDistributionName(dist), "learned-hash",
                    TablePrinter::FormatDouble(ns, 0),
                    TablePrinter::FormatDouble(var_before, 2),
                    std::to_string(chain_before),
                    TablePrinter::FormatDouble(map.LoadVariance(), 2)});
    }
    {
      std::unordered_map<uint64_t, uint64_t> map;
      map.reserve(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) map[keys[i]] = i;
      uint64_t sink = 0;
      const double ns = bench::MeasureNsPerOp(kNumLookups, [&](size_t i) {
        const auto it = map.find(hits[i]);
        sink += (it != map.end()) ? it->second : 0;
      });
      DoNotOptimize(sink);
      table.AddRow({KeyDistributionName(dist), "std::unordered_map",
                    TablePrinter::FormatDouble(ns, 0), "-", "-", "-"});
    }
  }
  table.Print();
  return 0;
}
