// E18 — Parallel build & compaction: the shared thread pool wired through
// every index's build path.
//
// Claim under test (tutorial §4.1, §5.6 build-cost discussions): learned-
// index construction is dominated by embarrassingly parallel work — sort,
// per-segment/per-model training, subtree bulk-loading, k-way merge — so a
// fixed-size worker pool should scale builds near-linearly until memory
// bandwidth saturates (target: >= 3x at 8 threads for RMI / RadixSpline /
// ZM on 10M lognormal keys, measured on a host with >= 8 hardware threads;
// single-core hosts still run the full sweep and report ~1x, which is the
// honest number there — see EXPERIMENTS.md E18).
//
// Every parallel build is checked against the serial build before timing
// is reported: lookups must agree on a sample and structural invariants
// must hold, so a speedup can never come from building a different (or
// broken) index.
//
// Usage: bench_e18_parallel_build [num_keys]   (default 10M; CI smoke: 1000)

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "lsm/lsm_tree.h"
#include "multi_d/flood.h"
#include "multi_d/zm_index.h"
#include "multi_d/zm_index3d.h"
#include "one_d/alex.h"
#include "one_d/pgm.h"
#include "one_d/radix_spline.h"
#include "one_d/rmi.h"

namespace lidx {
namespace {

const std::vector<size_t> kThreadSweep = {1, 2, 4, 8, 16};

struct Row {
  std::string index;
  size_t threads;
  double build_ms;
  double speedup;  // serial_ms / build_ms.
};

std::vector<bench::JsonRow> g_json;

void Record(std::vector<Row>* rows, const std::string& index, size_t threads,
            double build_ms, double serial_ms) {
  const double speedup = build_ms > 0.0 ? serial_ms / build_ms : 0.0;
  rows->push_back({index, threads, build_ms, speedup});
  g_json.push_back({bench::JsonField::Str("index", index),
                    bench::JsonField::Num("threads", threads),
                    bench::JsonField::Num("build_ms", build_ms),
                    bench::JsonField::Num("speedup", speedup)});
}

// Sweeps the thread counts for one index. `build(threads)` constructs the
// index and returns it; `probe(index, key)` returns the lookup result used
// for the serial-vs-parallel agreement check; `check(index)` runs the
// structural invariant hook (pass a no-op when the type has none).
template <typename BuildFn, typename ProbeFn, typename CheckFn>
void Sweep(const std::string& name, const std::vector<uint64_t>& probe_keys,
           BuildFn build, ProbeFn probe, CheckFn check,
           std::vector<Row>* rows) {
  double serial_ms = 0.0;
  auto reference = build(size_t{1});
  std::vector<decltype(probe(reference, uint64_t{0}))> expected;
  expected.reserve(probe_keys.size());
  for (uint64_t k : probe_keys) expected.push_back(probe(reference, k));
  for (size_t threads : kThreadSweep) {
    decltype(build(threads)) index;
    const double ms = bench::MeasureMs([&] { index = build(threads); });
    check(index);
    for (size_t i = 0; i < probe_keys.size(); ++i) {
      if (probe(index, probe_keys[i]) != expected[i]) {
        std::fprintf(stderr, "E18: %s at %zu threads disagrees with serial\n",
                     name.c_str(), threads);
        std::exit(1);
      }
    }
    if (threads == 1) serial_ms = ms;
    Record(rows, name, threads, ms, serial_ms);
  }
}

void RunOneDim(const bench::Dataset1D& data, std::vector<Row>* rows) {
  Rng rng(7);
  std::vector<uint64_t> probes(std::min<size_t>(data.keys.size(), 1000));
  for (uint64_t& p : probes) p = data.keys[rng.NextBounded(data.keys.size())];

  Sweep(
      "rmi", probes,
      [&](size_t threads) {
        Rmi<uint64_t, uint64_t> index;
        typename Rmi<uint64_t, uint64_t>::Options opts;
        opts.build_threads = threads;
        index.Build(data.keys, data.values, opts);
        return index;
      },
      [](const Rmi<uint64_t, uint64_t>& ix, uint64_t k) {
        return ix.Find(k).value_or(0);
      },
      [](const Rmi<uint64_t, uint64_t>& ix) { ix.CheckInvariants(); }, rows);

  Sweep(
      "pgm", probes,
      [&](size_t threads) {
        PgmIndex<uint64_t, uint64_t> index;
        typename PgmIndex<uint64_t, uint64_t>::Options opts;
        opts.build_threads = threads;
        index.Build(data.keys, data.values, opts);
        return index;
      },
      [](const PgmIndex<uint64_t, uint64_t>& ix, uint64_t k) {
        return ix.Find(k).value_or(0);
      },
      [](const PgmIndex<uint64_t, uint64_t>& ix) { ix.CheckInvariants(); },
      rows);

  Sweep(
      "radix-spline", probes,
      [&](size_t threads) {
        RadixSpline<uint64_t, uint64_t> index;
        typename RadixSpline<uint64_t, uint64_t>::Options opts;
        opts.build_threads = threads;
        index.Build(data.keys, data.values, opts);
        return index;
      },
      [](const RadixSpline<uint64_t, uint64_t>& ix, uint64_t k) {
        return ix.Find(k).value_or(0);
      },
      [](const RadixSpline<uint64_t, uint64_t>& ix) { ix.CheckInvariants(); },
      rows);

  Sweep(
      "alex", probes,
      [&](size_t threads) {
        typename AlexIndex<uint64_t, uint64_t>::Options opts;
        opts.build_threads = threads;
        auto index = std::make_shared<AlexIndex<uint64_t, uint64_t>>(opts);
        index->BulkLoad(data.keys, data.values);
        return index;
      },
      [](const std::shared_ptr<AlexIndex<uint64_t, uint64_t>>& ix,
         uint64_t k) { return ix->Find(k).value_or(0); },
      [](const std::shared_ptr<AlexIndex<uint64_t, uint64_t>>& ix) {
        ix->CheckInvariants();
      },
      rows);

  const auto pairs = bench::ToPairs(data);
  Sweep(
      "b+tree", probes,
      [&](size_t threads) {
        auto tree = std::make_shared<BPlusTree<uint64_t, uint64_t>>();
        tree->BulkLoad(pairs, /*fill_factor=*/1.0, threads);
        return tree;
      },
      [](const std::shared_ptr<BPlusTree<uint64_t, uint64_t>>& t,
         uint64_t k) { return t->Find(k).value_or(0); },
      [](const std::shared_ptr<BPlusTree<uint64_t, uint64_t>>& t) {
        t->CheckInvariants();
      },
      rows);
}

void RunMultiDim(size_t n, std::vector<Row>* rows) {
  const auto points =
      GeneratePoints(PointDistribution::kGaussianClusters, n, 3333);
  Rng rng(13);
  std::vector<uint64_t> probe_ids(std::min<size_t>(n, 500));
  for (uint64_t& p : probe_ids) p = rng.NextBounded(points.size());

  Sweep(
      "zm-index", probe_ids,
      [&](size_t threads) {
        auto index = std::make_shared<ZmIndex>();
        ZmIndex::Options opts;
        opts.build_threads = threads;
        index->Build(points, opts);
        return index;
      },
      [&](const std::shared_ptr<ZmIndex>& ix, uint64_t id) {
        const auto hits = ix->FindExact(points[id]);
        uint64_t sum = hits.size();
        for (uint32_t h : hits) sum += h;
        return sum;
      },
      [](const std::shared_ptr<ZmIndex>&) {}, rows);

  Sweep(
      "flood", probe_ids,
      [&](size_t threads) {
        auto index = std::make_shared<FloodIndex>();
        FloodIndex::Options opts;
        opts.num_columns = 64;
        opts.build_threads = threads;
        index->Build(points, {}, opts);
        return index;
      },
      [&](const std::shared_ptr<FloodIndex>& ix, uint64_t id) {
        const auto hits = ix->FindExact(points[id]);
        uint64_t sum = hits.size();
        for (uint32_t h : hits) sum += h;
        return sum;
      },
      [](const std::shared_ptr<FloodIndex>&) {}, rows);

  std::vector<Point3D> points3(points.size());
  Rng rng3(17);
  for (size_t i = 0; i < points.size(); ++i) {
    points3[i] = {points[i].x, points[i].y,
                  static_cast<double>(rng3.NextBounded(1u << 20)) /
                      static_cast<double>(1u << 20)};
  }
  Sweep(
      "zm-index-3d", probe_ids,
      [&](size_t threads) {
        auto index = std::make_shared<ZmIndex3D>();
        ZmIndex3D::Options opts;
        opts.build_threads = threads;
        index->Build(points3, opts);
        return index;
      },
      [&](const std::shared_ptr<ZmIndex3D>& ix, uint64_t id) {
        const auto hits = ix->FindExact(points3[id]);
        uint64_t sum = hits.size();
        for (uint32_t h : hits) sum += h;
        return sum;
      },
      [](const std::shared_ptr<ZmIndex3D>&) {}, rows);
}

// LSM: compaction-thread sweep on a Put-then-Flush workload, plus the
// background-compaction latency experiment (the insert-stall fix).
void RunLsm(size_t n, std::vector<Row>* rows) {
  const auto keys =
      GenerateKeys(KeyDistribution::kLognormal, std::min<size_t>(n, 400'000),
                   909);

  double serial_ms = 0.0;
  for (size_t threads : kThreadSweep) {
    LsmTree<uint64_t, uint64_t>::Options opts;
    opts.memtable_limit = 4096;
    opts.compaction_threads = threads;
    LsmTree<uint64_t, uint64_t> lsm(opts);
    const double ms = bench::MeasureMs([&] {
      for (size_t i = 0; i < keys.size(); ++i) lsm.Put(keys[i], i);
      lsm.Flush();
    });
    lsm.CheckInvariants();
    if (threads == 1) serial_ms = ms;
    Record(rows, "lsm-load", threads, ms, serial_ms);
  }

  // Put-latency tails: synchronous vs. background compaction. The whole
  // point of the background mode is that the slowest Put no longer pays
  // for a multi-level merge.
  std::printf("\n-- LSM put latency (%zu puts, memtable 4096) --\n",
              keys.size());
  std::printf("%-12s %12s %12s %12s\n", "mode", "p50_ns", "p99_ns", "max_ns");
  for (const bool background : {false, true}) {
    LsmTree<uint64_t, uint64_t>::Options opts;
    opts.memtable_limit = 4096;
    opts.background_compaction = background;
    LsmTree<uint64_t, uint64_t> lsm(opts);
    std::vector<double> lat;
    lat.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      Timer t;
      lsm.Put(keys[i], i);
      lat.push_back(static_cast<double>(t.ElapsedNanos()));
    }
    lsm.WaitForCompactions();
    lsm.CheckInvariants();
    const double p50 = bench::Percentile(&lat, 50);
    const double p99 = bench::Percentile(&lat, 99);
    const double mx = bench::Percentile(&lat, 100);
    const char* mode = background ? "background" : "sync";
    std::printf("%-12s %12.0f %12.0f %12.0f\n", mode, p50, p99, mx);
    g_json.push_back({bench::JsonField::Str("index", "lsm-put-latency"),
                      bench::JsonField::Str("mode", mode),
                      bench::JsonField::Num("p50_ns", p50),
                      bench::JsonField::Num("p99_ns", p99),
                      bench::JsonField::Num("max_ns", mx)});
  }
}

}  // namespace
}  // namespace lidx

int main(int argc, char** argv) {
  using namespace lidx;
  const size_t n = argc > 1
                       ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
                       : 10'000'000;
  bench::PrintHeader(
      "E18: parallel build & compaction (" + std::to_string(n) +
          " lognormal keys; threads 1/2/4/8/16)",
      "sort/train/merge-dominated builds scale with a shared worker pool; "
      "parallel builds are checked equivalent to serial before timing "
      "counts");
  std::printf("hardware threads on this host: %zu (pool size %zu)\n",
              static_cast<size_t>(std::thread::hardware_concurrency()),
              ThreadPool::Shared().num_threads());

  const bench::Dataset1D data =
      bench::MakeDataset1D(KeyDistribution::kLognormal, n, 4242);
  std::vector<Row> rows;
  RunOneDim(data, &rows);
  RunMultiDim(std::max<size_t>(n / 4, std::min<size_t>(n, 1000)), &rows);
  RunLsm(n, &rows);

  TablePrinter table({"index", "threads", "build_ms", "speedup"});
  for (const Row& r : rows) {
    table.AddRow({r.index, std::to_string(r.threads),
                  TablePrinter::FormatDouble(r.build_ms, 1),
                  TablePrinter::FormatDouble(r.speedup, 2) + "x"});
  }
  table.Print();

  bench::ReportJson(
      "e18_parallel_build", g_json,
      {bench::JsonField::Num("num_keys", n),
       bench::JsonField::Num(
           "hardware_threads",
           static_cast<size_t>(std::thread::hardware_concurrency()))});
  return 0;
}
