// E12 — Space-filling curve choice: Z-order vs Hilbert.
//
// Tutorial claim (§5.1): the SFC choice matters for projected-space
// indexes — a range query maps to a set of curve intervals ("clusters"),
// and Hilbert's unit-step locality yields fewer clusters than Z-order at
// the cost of a pricier per-point transform. Expected shape: Hilbert
// produces ~fewer clusters per rectangle (factor grows with rectangle
// size) but encodes several times slower.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"

namespace lidx {
namespace {

constexpr int kBits = 10;  // 1024 x 1024 grid.

// Number of contiguous curve-index runs covering the rectangle: the
// "cluster count" metric from the SFC analysis literature (Mokbel et al.).
template <typename EncodeFn>
size_t CountClusters(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                     EncodeFn encode) {
  std::vector<uint64_t> codes;
  codes.reserve(static_cast<size_t>(x1 - x0 + 1) * (y1 - y0 + 1));
  for (uint32_t x = x0; x <= x1; ++x) {
    for (uint32_t y = y0; y <= y1; ++y) {
      codes.push_back(encode(x, y));
    }
  }
  std::sort(codes.begin(), codes.end());
  size_t clusters = 1;
  for (size_t i = 1; i < codes.size(); ++i) {
    if (codes[i] != codes[i - 1] + 1) ++clusters;
  }
  return clusters;
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E12: space-filling curve comparison (1024x1024 grid)",
      "Hilbert clusters range queries into fewer curve intervals than "
      "Z-order, at higher per-point encode cost");

  Rng rng(1818);
  TablePrinter table({"rect_side", "z_clusters(avg)", "hilbert_clusters(avg)",
                      "ratio z/h"});
  for (uint32_t side : {4u, 16u, 64u, 256u}) {
    double z_total = 0, h_total = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
      const uint32_t x0 = static_cast<uint32_t>(
          rng.NextBounded((1u << kBits) - side));
      const uint32_t y0 = static_cast<uint32_t>(
          rng.NextBounded((1u << kBits) - side));
      z_total += static_cast<double>(
          CountClusters(x0, y0, x0 + side - 1, y0 + side - 1,
                        [](uint32_t x, uint32_t y) {
                          return sfc::MortonEncode2D(x, y);
                        }));
      h_total += static_cast<double>(
          CountClusters(x0, y0, x0 + side - 1, y0 + side - 1,
                        [](uint32_t x, uint32_t y) {
                          return sfc::HilbertEncode2D(x, y, kBits);
                        }));
    }
    table.AddRow({std::to_string(side),
                  TablePrinter::FormatDouble(z_total / trials, 1),
                  TablePrinter::FormatDouble(h_total / trials, 1),
                  TablePrinter::FormatDouble(z_total / h_total, 2)});
  }
  table.Print();

  // Encode throughput.
  constexpr size_t kOps = 2'000'000;
  std::vector<uint32_t> xs(kOps), ys(kOps);
  for (size_t i = 0; i < kOps; ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextBounded(1u << kBits));
    ys[i] = static_cast<uint32_t>(rng.NextBounded(1u << kBits));
  }
  uint64_t sink = 0;
  const double z_ns = bench::MeasureNsPerOp(kOps, [&](size_t i) {
    sink += sfc::MortonEncode2D(xs[i], ys[i]);
  });
  const double h_ns = bench::MeasureNsPerOp(kOps, [&](size_t i) {
    sink += sfc::HilbertEncode2D(xs[i], ys[i], kBits);
  });
  DoNotOptimize(sink);
  TablePrinter enc({"curve", "encode ns/op"});
  enc.AddRow({"z-order", TablePrinter::FormatDouble(z_ns, 1)});
  enc.AddRow({"hilbert", TablePrinter::FormatDouble(h_ns, 1)});
  enc.Print();
  return 0;
}
