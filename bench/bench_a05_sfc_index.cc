// A5 (ablation/extension) — the SFC choice inside an actual index:
// Z-order ZM-index (BIGMIN leapfrogging) vs Hilbert HM-index (up-front
// interval decomposition) on identical data and queries.
//
// E12 measured the curves in isolation (Hilbert ~2x fewer intervals per
// rectangle, ~18x costlier encode); this ablation shows how those
// primitives compose: interval count drives the number of learned-index
// re-entries per range query, encode cost drives point queries and build.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/hm_index.h"
#include "multi_d/zm_index.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 1'000'000;
constexpr size_t kNumRangeQueries = 300;
constexpr size_t kNumPointQueries = 100'000;

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "A5: SFC choice inside the index — ZM (Z-order + BIGMIN) vs HM "
      "(Hilbert + decomposition), 1M clustered points",
      "Hilbert's fewer curve intervals vs Z-order's cheaper transform");

  const auto points =
      GeneratePoints(PointDistribution::kGaussianClusters, kNumPoints, 8181);

  ZmIndex zm;
  const double zm_build_ms = bench::MeasureMs([&] { zm.Build(points); });
  HmIndex hm;
  HmIndex::Options hm_opts;
  hm_opts.bits_per_dim = 16;
  const double hm_build_ms =
      bench::MeasureMs([&] { hm.Build(points, hm_opts); });

  // Point queries.
  Rng rng(8282);
  std::vector<Point2D> probes;
  probes.reserve(kNumPointQueries);
  for (size_t i = 0; i < kNumPointQueries; ++i) {
    probes.push_back(points[rng.NextBounded(points.size())]);
  }
  uint64_t sink = 0;
  const double zm_point_ns = bench::MeasureNsPerOp(
      kNumPointQueries, [&](size_t i) { sink += zm.FindExact(probes[i]).size(); });
  const double hm_point_ns = bench::MeasureNsPerOp(
      kNumPointQueries, [&](size_t i) { sink += hm.FindExact(probes[i]).size(); });
  DoNotOptimize(sink);

  TablePrinter table({"metric", "zm (z-order)", "hm (hilbert)"});
  table.AddRow({"build ms", TablePrinter::FormatDouble(zm_build_ms, 0),
                TablePrinter::FormatDouble(hm_build_ms, 0)});
  table.AddRow({"point query ns", TablePrinter::FormatDouble(zm_point_ns, 0),
                TablePrinter::FormatDouble(hm_point_ns, 0)});
  table.Print();

  TablePrinter ranges({"selectivity", "zm us/query", "hm us/query"});
  for (double selectivity : {0.0001, 0.001, 0.01}) {
    const auto queries =
        GenerateRangeQueries(points, kNumRangeQueries, selectivity, 8383);
    Timer t1;
    for (const RangeQuery2D& q : queries) sink += zm.RangeQuery(q).size();
    const double zm_us = t1.ElapsedSeconds() * 1e6 / kNumRangeQueries;
    Timer t2;
    for (const RangeQuery2D& q : queries) sink += hm.RangeQuery(q).size();
    const double hm_us = t2.ElapsedSeconds() * 1e6 / kNumRangeQueries;
    DoNotOptimize(sink);
    ranges.AddRow({TablePrinter::FormatDouble(selectivity * 100, 3) + "%",
                   TablePrinter::FormatDouble(zm_us, 1),
                   TablePrinter::FormatDouble(hm_us, 1)});
  }
  ranges.Print();
  return 0;
}
