// E8 — Range-query selectivity sweep: projected vs native space.
//
// Tutorial claim (§5.1, §6.1): the projected-space route (ZM-index) pays
// for the curve's locality loss — a rectangle shatters into many Z-order
// intervals — while native-space layouts (Flood) only pay edge-filtering.
// Expected shape: at low selectivity all indexes are fast; as selectivity
// grows, Flood and the R-tree scale with output size while the ZM-index's
// BIGMIN jumping keeps it competitive but behind on wide rectangles.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/flood.h"
#include "multi_d/lisa.h"
#include "multi_d/zm_index.h"
#include "spatial/grid.h"
#include "spatial/rtree.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 1'000'000;
constexpr size_t kNumQueries = 300;

template <typename QueryFn>
double MeasureUsPerQuery(const std::vector<RangeQuery2D>& queries,
                         QueryFn query) {
  uint64_t sink = 0;
  Timer timer;
  for (const RangeQuery2D& q : queries) sink += query(q);
  const double us =
      timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.size());
  DoNotOptimize(sink);
  return us;
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E8: 2-D range queries, selectivity sweep (1M clustered points)",
      "native-space learned layout (Flood) vs projected space (ZM) vs "
      "traditional (R-tree, grid); crossover with selectivity");

  const auto points =
      GeneratePoints(PointDistribution::kGaussianClusters, kNumPoints, 5555);

  RTree rtree;
  rtree.BulkLoad(points);
  UniformGrid grid(256);
  grid.Build(points);
  ZmIndex zm;
  zm.Build(points);
  const auto tuning = GenerateRangeQueries(points, 32, 0.001, 6666);
  FloodIndex flood;
  flood.Build(points, tuning);
  LisaIndex lisa;
  lisa.Build(points);

  TablePrinter table({"selectivity", "avg_results", "r-tree us", "grid us",
                      "zm us", "flood us", "lisa us"});
  for (double selectivity : {0.00001, 0.0001, 0.001, 0.01, 0.1}) {
    const auto queries =
        GenerateRangeQueries(points, kNumQueries, selectivity, 7777);
    double total_results = 0;
    for (const RangeQuery2D& q : queries) {
      total_results += static_cast<double>(rtree.RangeQuery(q).size());
    }
    const double r_us = MeasureUsPerQuery(
        queries, [&](const RangeQuery2D& q) { return rtree.RangeQuery(q).size(); });
    const double g_us = MeasureUsPerQuery(
        queries, [&](const RangeQuery2D& q) { return grid.RangeQuery(q).size(); });
    const double z_us = MeasureUsPerQuery(
        queries, [&](const RangeQuery2D& q) { return zm.RangeQuery(q).size(); });
    const double f_us = MeasureUsPerQuery(
        queries, [&](const RangeQuery2D& q) { return flood.RangeQuery(q).size(); });
    const double l_us = MeasureUsPerQuery(
        queries, [&](const RangeQuery2D& q) { return lisa.RangeQuery(q).size(); });
    table.AddRow({TablePrinter::FormatDouble(selectivity * 100, 4) + "%",
                  TablePrinter::FormatDouble(
                      total_results / static_cast<double>(queries.size()), 0),
                  TablePrinter::FormatDouble(r_us, 1),
                  TablePrinter::FormatDouble(g_us, 1),
                  TablePrinter::FormatDouble(z_us, 1),
                  TablePrinter::FormatDouble(f_us, 1),
                  TablePrinter::FormatDouble(l_us, 1)});
  }
  table.Print();
  std::printf("flood tuned columns: %zu\n", flood.NumColumns());
  return 0;
}
