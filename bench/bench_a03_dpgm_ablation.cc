// A3 (ablation) — Dynamic PGM design knobs: buffer size, growth factor,
// and component Bloom filters.
//
// Why these knobs: the delta-buffer design's insert cost is pure merge
// amortization — each entry is rewritten once per level it cascades
// through — while its read cost is the number of components consulted.
// The buffer batches writes before they enter the cascade; the growth
// factor sets the cascade depth; per-component Bloom filters let negative
// probes skip components. Expected shape: bigger buffers and fanout help
// inserts and hurt nothing much at this scale; removing blooms multiplies
// the cost of reads that miss (and of the membership pre-check inside
// Insert).

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/dynamic_pgm.h"

namespace lidx {
namespace {

constexpr size_t kInitialKeys = 500'000;
constexpr size_t kNumOps = 300'000;

void Run(TablePrinter* table, const std::string& label,
         const DynamicPgm<uint64_t, uint64_t>::Options& options,
         const std::vector<uint64_t>& initial,
         const std::vector<uint64_t>& values,
         const std::vector<uint64_t>& inserts,
         const std::vector<uint64_t>& miss_lookups) {
  DynamicPgm<uint64_t, uint64_t> index(options);
  index.BulkLoad(initial, values);
  Timer t1;
  for (size_t i = 0; i < inserts.size(); ++i) index.Insert(inserts[i], i);
  const double insert_kops =
      static_cast<double>(inserts.size()) / t1.ElapsedSeconds() / 1e3;
  uint64_t sink = 0;
  const double miss_ns =
      bench::MeasureNsPerOp(miss_lookups.size(), [&](size_t i) {
        sink += index.Contains(miss_lookups[i]);
      });
  DoNotOptimize(sink);
  table->AddRow({label, TablePrinter::FormatDouble(insert_kops, 0),
                 TablePrinter::FormatDouble(miss_ns, 0),
                 std::to_string(index.NumComponents()),
                 TablePrinter::FormatBytes(index.SizeBytes())});
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "A3 (ablation): Dynamic PGM buffer size, growth factor, blooms "
      "(500K preload, 300K inserts)",
      "delta-buffer insert cost = cascade depth x merge constant; blooms "
      "protect negative lookups");

  const auto initial =
      GenerateKeys(KeyDistribution::kUniform, kInitialKeys, 6161);
  std::vector<uint64_t> values(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) values[i] = i;
  const auto inserts = GenerateKeys(KeyDistribution::kUniform, kNumOps, 6262);
  const auto misses = GenerateLookupKeys(initial, kNumOps, 0.0, 1.0, 41);

  TablePrinter table({"config", "insert Kops/s", "miss ns/lookup",
                      "components", "size"});
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;  // Defaults: 256 / 4x.
    Run(&table, "default (buf=256, 4x)", opts, initial, values, inserts,
        misses);
  }
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;
    opts.base_capacity = 64;
    Run(&table, "small buffer (64)", opts, initial, values, inserts, misses);
  }
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;
    opts.base_capacity = 2048;
    Run(&table, "large buffer (2048)", opts, initial, values, inserts,
        misses);
  }
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;
    opts.size_factor_log2 = 1;
    Run(&table, "doubling slots (2x)", opts, initial, values, inserts,
        misses);
  }
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;
    opts.size_factor_log2 = 3;
    Run(&table, "8x slots", opts, initial, values, inserts, misses);
  }
  {
    DynamicPgm<uint64_t, uint64_t>::Options opts;
    opts.bloom_bits_per_key = 0.01;  // Effectively disable the filters.
    Run(&table, "no blooms", opts, initial, values, inserts, misses);
  }
  table.Print();
  return 0;
}
