// E2 — Insert strategies: in-place (ALEX, LIPP) vs delta-buffer
// (DynamicPGM) vs traditional (B+-tree, skip list).
//
// Tutorial claim (§4.4): the two insertion strategies trade off — in-place
// gapped structures pay per-insert shifting/rebuild costs but keep reads
// one-structure fast; delta-buffer designs make inserts cheap appends but
// reads must consult multiple components. Expected shape: DynamicPGM leads
// on insert-heavy load, ALEX/LIPP lead once the mix becomes read-heavy,
// and the B+-tree sits between but with a larger footprint.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "baselines/skiplist.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "one_d/alex.h"
#include "one_d/dynamic_pgm.h"
#include "one_d/fiting_tree.h"
#include "one_d/lipp.h"

namespace lidx {
namespace {

constexpr size_t kInitialKeys = 500'000;
constexpr size_t kNumOps = 500'000;

struct Mix {
  std::string name;
  double read_fraction;
};

// Runs `ops` against an index adapter and returns Mops/s.
template <typename InsertFn, typename ReadFn>
double RunOps(const std::vector<Operation>& ops, InsertFn insert,
              ReadFn read) {
  uint64_t sink = 0;
  Timer timer;
  for (const Operation& op : ops) {
    if (op.type == OpType::kInsert) {
      insert(op.key, op.key);
    } else {
      sink += read(op.key);
    }
  }
  const double seconds = timer.ElapsedSeconds();
  DoNotOptimize(sink);
  return static_cast<double>(ops.size()) / seconds / 1e6;
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E2: 1-D mixed insert/read throughput (500K preload, 500K ops)",
      "in-place vs delta-buffer insertion strategies trade off with the "
      "read fraction");

  const auto initial = GenerateKeys(KeyDistribution::kUniform, kInitialKeys,
                                    1001);
  std::vector<uint64_t> values(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) values[i] = i;
  // Fresh keys for inserts, disjoint-ish from the initial set.
  const auto pool =
      GenerateKeys(KeyDistribution::kUniform, kNumOps + 1000, 2002);

  const std::vector<Mix> mixes = {{"insert-only", 0.0},
                                  {"mixed-50/50", 0.5},
                                  {"read-heavy-95/5", 0.95}};

  TablePrinter table({"workload", "index", "Mops/s", "size_after"});
  for (const Mix& mix : mixes) {
    MixedWorkloadSpec spec;
    spec.read_fraction = mix.read_fraction;
    spec.insert_fraction = 1.0 - mix.read_fraction;
    const auto ops =
        GenerateMixedWorkload(spec, kNumOps, initial, pool, 3003);

    {
      BPlusTree<uint64_t, uint64_t> tree;
      std::vector<std::pair<uint64_t, uint64_t>> pairs;
      for (size_t i = 0; i < initial.size(); ++i) {
        pairs.emplace_back(initial[i], i);
      }
      tree.BulkLoad(pairs);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { tree.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return tree.Find(k).value_or(0); });
      table.AddRow({mix.name, "b+tree", TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(tree.SizeBytes())});
    }
    {
      SkipList<uint64_t, uint64_t> list;
      for (size_t i = 0; i < initial.size(); ++i) list.Insert(initial[i], i);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { list.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return list.Find(k).value_or(0); });
      table.AddRow({mix.name, "skiplist", TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(list.SizeBytes())});
    }
    {
      AlexIndex<uint64_t, uint64_t> index;
      index.BulkLoad(initial, values);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { index.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); });
      table.AddRow({mix.name, "alex (in-place)",
                    TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(index.SizeBytes())});
    }
    {
      LippIndex<uint64_t, uint64_t> index;
      index.BulkLoad(initial, values);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { index.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); });
      table.AddRow({mix.name, "lipp (in-place)",
                    TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(index.SizeBytes())});
    }
    {
      DynamicPgm<uint64_t, uint64_t> index;
      index.BulkLoad(initial, values);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { index.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); });
      table.AddRow({mix.name, "dynamic-pgm (delta)",
                    TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(index.SizeBytes())});
    }
    {
      FitingTree<uint64_t, uint64_t> index;
      index.BulkLoad(initial, values);
      const double mops = RunOps(
          ops, [&](uint64_t k, uint64_t v) { index.Insert(k, v); },
          [&](uint64_t k) -> uint64_t { return index.Find(k).value_or(0); });
      table.AddRow({mix.name, "fiting-tree (seg-delta)",
                    TablePrinter::FormatDouble(mops, 2),
                    TablePrinter::FormatBytes(index.SizeBytes())});
    }
  }
  table.Print();
  return 0;
}
