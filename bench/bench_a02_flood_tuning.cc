// A2 (ablation) — Flood's two learned components, removed one at a time.
//
// Flood = (a) equi-depth column boundaries learned from the data's x-CDF
// + (b) a workload-driven column count + (c) per-column learned y-models.
// This ablation isolates each: uniform column boundaries (un-learn the
// CDF), fixed vs tuned column counts, and binary search instead of the
// per-column model. Expected shape: on skewed data the learned boundaries
// matter most; tuning matters when the workload's selectivity is far from
// the default's sweet spot.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/flood.h"
#include "spatial/grid.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 1'000'000;
constexpr size_t kNumQueries = 300;

template <typename Index>
double MeasureUs(const Index& index,
                 const std::vector<RangeQuery2D>& queries) {
  uint64_t sink = 0;
  Timer timer;
  for (const RangeQuery2D& q : queries) sink += index.RangeQuery(q).size();
  DoNotOptimize(sink);
  return timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.size());
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "A2 (ablation): what each learned component of Flood buys (1M skewed "
      "points)",
      "learned equi-depth boundaries vs uniform; tuned vs fixed column "
      "count");

  const auto points =
      GeneratePoints(PointDistribution::kSkewedGrid, kNumPoints, 4343);
  const auto tuning = GenerateRangeQueries(points, 32, 0.001, 4444);
  const auto queries =
      GenerateRangeQueries(points, kNumQueries, 0.001, 4545);

  TablePrinter table({"variant", "columns", "us/query"});
  {
    // Full Flood: learned boundaries + workload tuning.
    FloodIndex flood;
    flood.Build(points, tuning);
    table.AddRow({"flood (learned CDF + tuned)",
                  std::to_string(flood.NumColumns()),
                  TablePrinter::FormatDouble(MeasureUs(flood, queries), 1)});
  }
  for (size_t columns : {16u, 64u, 1024u}) {
    // Learned boundaries, fixed (untuned) column count.
    FloodIndex flood;
    FloodIndex::Options opts;
    opts.num_columns = columns;
    flood.Build(points, {}, opts);
    table.AddRow({"flood (learned CDF, fixed)", std::to_string(columns),
                  TablePrinter::FormatDouble(MeasureUs(flood, queries), 1)});
  }
  {
    // Un-learned boundaries: a plain uniform grid at comparable resolution
    // (256x256 cells ~ 256 columns of 256 rows).
    UniformGrid grid(256);
    grid.Build(points);
    table.AddRow({"uniform grid (no learning)", "256x256",
                  TablePrinter::FormatDouble(MeasureUs(grid, queries), 1)});
  }
  table.Print();
  return 0;
}
