// E22 — Async batched disk I/O: io_uring / thread-pool read engines under
// the AMAC-on-storage scheduler.
//
// Claim under test (tutorial §4.2 disk-based systems + "Updatable Learned
// Indexes Meet Disk-Resident DBMS"): once the model navigates in memory
// and each lookup costs ~one page read, a *sync* read path is limited by
// one-request-at-a-time latency, not by what the device can deliver.
// Keeping a queue depth D of page reads in flight (DiskRun::GetBatch over
// an AsyncReadEngine) must scale cold random-read throughput toward the
// device's IOPS limit, while warm lookups — pool and page-cache hits —
// measure the scheduler's fixed overhead instead. Results are checked
// byte-identical against the scalar path for every configuration.
//
// Sections:
//   1. Sync baseline: scalar DiskRun::Get, cold and warm.
//   2. Depth sweep: backend × queue depth {1, 8, 32, 64} × cold/warm;
//      throughput, read IOPS, and p50/p99 per-lookup latency.
//   3. Acceptance: best cold speedup at depth >= 8 vs the sync baseline
//      (the ISSUE-8 bar is >= 2x on at least one backend).
//
// Cold passes drop the file's OS page cache (posix_fadvise DONTNEED) and
// invalidate the buffer pool, so every page read reaches the device.
//
// Usage: bench_e22_async_disk_io [num_keys]  (default 2M; CI smoke: 20000)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/invariants.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "lsm/run.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_run.h"
#include "storage/file_manager.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace lidx::storage {
namespace {

std::vector<bench::JsonRow> g_json;

using Run = DiskRun<uint64_t, uint64_t>;
using Out = std::optional<RunEntry<uint64_t>>;

// Evicts every cached copy of the run's pages: buffer-pool frames first
// (ids are dense from a fresh FileManager), then the kernel page cache.
// Returns false when the fadvise hint is unsupported (cold ≈ warm then;
// reported, not fatal).
bool MakeCold(const FileManager& file, BufferPool* pool) {
  for (uint64_t id = 0; id < file.NumPages(); ++id) pool->Invalidate(id);
  return file.DropOsCache();
}

struct PassResult {
  double ops_per_sec = 0;
  double iops = 0;  // Device/page reads per second during the pass.
  double p50_us = 0;
  double p99_us = 0;
  double pages_per_lookup = 0;
};

void AddRow(TablePrinter* table, const char* path,
            const char* backend, size_t depth, const char* temp,
            const PassResult& r) {
  table->AddRow({path, backend, depth == 0 ? "-" : std::to_string(depth),
                 temp, TablePrinter::FormatDouble(r.ops_per_sec, 0),
                 TablePrinter::FormatDouble(r.iops, 0),
                 TablePrinter::FormatDouble(r.p50_us, 1),
                 TablePrinter::FormatDouble(r.p99_us, 1)});
  g_json.push_back(
      {bench::JsonField::Str("path", path),
       bench::JsonField::Str("backend", backend),
       bench::JsonField::Num("queue_depth", depth),
       bench::JsonField::Str("temp", temp),
       bench::JsonField::Num("ops_per_sec", r.ops_per_sec),
       bench::JsonField::Num("iops", r.iops),
       bench::JsonField::Num("p50_us", r.p50_us),
       bench::JsonField::Num("p99_us", r.p99_us),
       bench::JsonField::Num("pages_per_lookup", r.pages_per_lookup)});
}

// Scalar pass: per-lookup latency sampled around each Get.
PassResult RunScalar(const Run& run, const std::vector<uint64_t>& probes,
                     const FileManager& file, std::vector<Out>* out) {
  std::vector<double> lat_us;
  lat_us.reserve(probes.size());
  DiskIoStats io;
  const uint64_t reads_before = file.pages_read();
  Timer pass;
  for (size_t i = 0; i < probes.size(); ++i) {
    Timer one;
    (*out)[i] = run.Get(probes[i], &io);
    lat_us.push_back(static_cast<double>(one.ElapsedNanos()) / 1e3);
  }
  const double secs = pass.ElapsedSeconds();
  PassResult r;
  r.ops_per_sec = static_cast<double>(probes.size()) / secs;
  r.iops = static_cast<double>(file.pages_read() - reads_before) / secs;
  r.p50_us = bench::Percentile(&lat_us, 50);
  r.p99_us = bench::Percentile(&lat_us, 99);
  r.pages_per_lookup =
      static_cast<double>(io.pages_touched) / static_cast<double>(probes.size());
  return r;
}

// Batched pass: GetBatch in fixed-size groups; per-lookup latency is the
// amortized per-batch wall time (individual completions interleave inside
// the scheduler, so the batch is the schedulable unit).
PassResult RunBatched(const Run& run, const std::vector<uint64_t>& probes,
                      AsyncReadEngine* engine, std::vector<Out>* out) {
  constexpr size_t kBatch = 512;
  std::vector<double> lat_us;
  lat_us.reserve(probes.size() / kBatch + 1);
  DiskIoStats io;
  const uint64_t reads_before = engine->stats().reads_submitted;
  Timer pass;
  for (size_t begin = 0; begin < probes.size(); begin += kBatch) {
    const size_t len = std::min(kBatch, probes.size() - begin);
    Timer one;
    run.GetBatch(probes.data() + begin, len, engine, out->data() + begin,
                 &io);
    lat_us.push_back(static_cast<double>(one.ElapsedNanos()) / 1e3 /
                     static_cast<double>(len));
  }
  const double secs = pass.ElapsedSeconds();
  PassResult r;
  r.ops_per_sec = static_cast<double>(probes.size()) / secs;
  r.iops = static_cast<double>(engine->stats().reads_submitted -
                               reads_before) /
           secs;
  r.p50_us = bench::Percentile(&lat_us, 50);
  r.p99_us = bench::Percentile(&lat_us, 99);
  r.pages_per_lookup =
      static_cast<double>(io.pages_touched) / static_cast<double>(probes.size());
  return r;
}

void CheckIdentical(const std::vector<Out>& got, const std::vector<Out>& want,
                    const char* what) {
  LIDX_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    LIDX_CHECK(got[i].has_value() == want[i].has_value());
    if (got[i].has_value()) {
      LIDX_CHECK(got[i]->value == want[i]->value &&
                 got[i]->deleted == want[i]->deleted);
    }
  }
  (void)what;
}

}  // namespace
}  // namespace lidx::storage

int main(int argc, char** argv) {
  using namespace lidx;
  using namespace lidx::storage;
  const size_t n =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 2'000'000;
  bench::PrintHeader(
      "E22: async batched disk I/O (" + std::to_string(n) +
          " lognormal keys, 4 KiB pages)",
      "a queue depth D of in-flight page reads lifts cold random-read "
      "throughput toward device IOPS; sync reads pay full latency per "
      "lookup");

  const bench::Dataset1D data =
      bench::MakeDataset1D(KeyDistribution::kLognormal, n, 2222,
                           bench::ValueScheme::kHashed);
  const std::string path = "bench_e22_run.pagefile";
  std::remove(path.c_str());
  FileManager file(path);
  // Pool far smaller than the table: uniform random probes miss ~always,
  // so cold passes measure the read path, not replacement policy.
  BufferPool pool(&file, 64);
  std::vector<std::pair<uint64_t, RunEntry<uint64_t>>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.emplace_back(data.keys[i], RunEntry<uint64_t>{data.values[i],
                                                          false});
  }
  Run run(std::move(entries), &file, &pool, {});
  std::printf("run: %zu pages (%.1f MiB), pool %zu frames\n", run.NumPages(),
              static_cast<double>(run.NumPages() * kPageSize) / (1 << 20),
              pool.num_frames());

  // Uniform random present keys: every lookup survives the Bloom filter
  // and reads exactly one random page — the IOPS-bound regime.
  Rng rng(77);
  const size_t cold_probes = std::min<size_t>(n, 4000);
  const size_t warm_probes = std::min<size_t>(n, 40000);
  std::vector<uint64_t> probes(std::max(cold_probes, warm_probes));
  for (uint64_t& k : probes) k = data.keys[rng.NextBounded(n)];
  const std::vector<uint64_t> cold(probes.begin(),
                                   probes.begin() +
                                       static_cast<std::ptrdiff_t>(cold_probes));
  const std::vector<uint64_t> warm(probes.begin(),
                                   probes.begin() +
                                       static_cast<std::ptrdiff_t>(warm_probes));

  TablePrinter table({"path", "backend", "depth", "temp", "ops/s",
                             "iops", "p50_us", "p99_us"});

  // Reference results (correctness is temperature-independent).
  std::vector<Out> want_cold(cold.size());
  std::vector<Out> want_warm(warm.size());
  for (size_t i = 0; i < warm.size(); ++i) {
    want_warm[i] = run.Get(warm[i], nullptr);
  }
  for (size_t i = 0; i < cold.size(); ++i) want_cold[i] = want_warm[i];

  // ----- Section 1: sync baseline -----
  const bool cold_real = MakeCold(file, &pool);
  if (!cold_real) {
    std::printf("note: posix_fadvise(DONTNEED) unsupported here — 'cold' "
                "passes run against a warm page cache\n");
  }
  std::vector<Out> scalar_cold(cold.size());
  const PassResult sync_cold = RunScalar(run, cold, file, &scalar_cold);
  CheckIdentical(scalar_cold, want_cold, "scalar cold");
  AddRow(&table, "scalar", "sync", 0, "cold", sync_cold);
  std::vector<Out> scalar_warm(warm.size());
  const PassResult sync_warm = RunScalar(run, warm, file, &scalar_warm);
  CheckIdentical(scalar_warm, want_warm, "scalar warm");
  AddRow(&table, "scalar", "sync", 0, "warm", sync_warm);

  // ----- Section 2: backend × depth × cold/warm -----
  double best_speedup = 0;
  std::string best_config;
  for (const IoBackend requested :
       {IoBackend::kIoUring, IoBackend::kThreadPool}) {
    for (const size_t depth : {1u, 8u, 32u, 64u}) {
      auto engine = AsyncReadEngine::Create(requested, depth);
      if (engine->backend() != requested) {
        // io_uring unavailable (or LIDX_IO_BACKEND forced the fallback):
        // measuring the substitute under the wrong label would lie.
        std::printf("note: backend %s unavailable, skipping (resolved to "
                    "%s)\n",
                    IoBackendName(requested), engine->name());
        break;
      }
      MakeCold(file, &pool);
      std::vector<Out> got_cold(cold.size());
      const PassResult batched_cold =
          RunBatched(run, cold, engine.get(), &got_cold);
      CheckIdentical(got_cold, want_cold, "batched cold");
      AddRow(&table, "batched", engine->name(), depth, "cold", batched_cold);
      std::vector<Out> got_warm(warm.size());
      const PassResult batched_warm =
          RunBatched(run, warm, engine.get(), &got_warm);
      CheckIdentical(got_warm, want_warm, "batched warm");
      AddRow(&table, "batched", engine->name(), depth, "warm", batched_warm);
      if (depth >= 8) {
        const double speedup = batched_cold.ops_per_sec /
                               sync_cold.ops_per_sec;
        if (speedup > best_speedup) {
          best_speedup = speedup;
          best_config = std::string(engine->name()) + " depth " +
                        std::to_string(depth);
        }
      }
    }
  }
  table.Print();

  // ----- Section 3: acceptance -----
  const bool pass = best_speedup >= 2.0;
  std::printf("\nacceptance: best cold speedup at depth >= 8 is %.2fx (%s) "
              "vs sync — %s (bar: >= 2x; results byte-identical in every "
              "configuration)\n",
              best_speedup, best_config.empty() ? "none" : best_config.c_str(),
              pass ? "PASS" : "FAIL");

  bench::ReportJson(
      "e22_async_disk_io", g_json,
      {bench::JsonField::Num("num_keys", n),
       bench::JsonField::Num("num_pages", run.NumPages()),
       bench::JsonField::Num("cold_probes", cold.size()),
       bench::JsonField::Num("warm_probes", warm.size()),
       bench::JsonField::Num("cold_is_real", cold_real ? 1.0 : 0.0),
       bench::JsonField::Num("best_cold_speedup_depth_ge8", best_speedup),
       bench::JsonField::Str("best_config", best_config),
       bench::JsonField::Num("acceptance_pass", pass ? 1.0 : 0.0)});
  std::remove(path.c_str());
  return 0;
}
