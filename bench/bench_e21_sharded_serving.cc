// E21 — Sharded concurrent serving: multi-threaded YCSB over
// ShardedIndex<Index> with epoch-based reclamation.
//
// Tutorial claim (§6): concurrency is the main gap between learned-index
// prototypes and deployable systems, and *Are Updatable Learned Indexes
// Ready?* (PAPERS.md) shows updatable learned indexes live or die under
// mixed multi-threaded workloads. The serving layer under test
// range-partitions keys across shards (boundaries learned from a sample
// CDF), keeps readers lock-free behind epoch reclamation, and drains
// per-shard write buffers through the shared thread pool.
//
// What to look for:
//  * YCSB-C (read-only, uniform): throughput should scale near-linearly
//    with threads — readers pin an epoch and walk immutable state, no
//    shared writes. Target >= 0.7x linear at the core count.
//  * YCSB-A (50/50): insert p999 should stay within ~10x of insert p50 —
//    the slow path is an O(1) buffer seal, never an inline retrain.
//  * The global-lock baseline should collapse as threads grow; the gap is
//    the point of the serving layer.
//
// Usage: bench_e21_sharded_serving [n_keys] [ops_per_thread] [num_shards]
//                                  [max_threads]
// Defaults: 1M keys, 200k ops/thread, 16 shards, hardware_concurrency.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/stats.h"
#include "one_d/alex.h"
#include "one_d/concurrent_index.h"
#include "one_d/dynamic_pgm.h"
#include "one_d/lipp.h"
#include "serving/sharded_index.h"
#include "serving/workload.h"

namespace lidx {
namespace {

using bench::Dataset1D;
using bench::JsonField;
using bench::JsonRow;
using serving::RunYcsb;
using serving::WorkloadOptions;
using serving::WorkloadResult;
using serving::YcsbMix;
using serving::YcsbMixName;

struct Config {
  size_t n_keys = 1'000'000;
  size_t ops_per_thread = 200'000;
  size_t num_shards = 16;
  size_t max_threads = 0;  // 0 = hardware_concurrency.
};

struct LoadedData {
  std::vector<uint64_t> keys;    // Bulk-loaded into the index.
  std::vector<uint64_t> values;  // keys[i] ^ 0x9E3779B9.
  std::vector<uint64_t> pool;    // Fresh keys for inserts, key-interleaved.
};

// Generates n_keys + pool keys from one distribution, then peels every
// k-th key off into the insert pool so inserts land *between* loaded keys
// (the hard case for learned models) rather than appending at the end.
LoadedData MakeServingData(size_t n_keys, size_t pool_size) {
  const size_t total = n_keys + pool_size;
  Dataset1D all = bench::MakeDataset1D(KeyDistribution::kLognormal, total, 42,
                                       bench::ValueScheme::kHashed);
  LoadedData data;
  data.keys.reserve(n_keys);
  data.values.reserve(n_keys);
  data.pool.reserve(pool_size);
  const size_t stride = pool_size == 0 ? total + 1 : total / pool_size;
  for (size_t i = 0; i < all.keys.size(); ++i) {
    if (stride >= 1 && i % stride == stride - 1 &&
        data.pool.size() < pool_size) {
      data.pool.push_back(all.keys[i]);
    } else {
      data.keys.push_back(all.keys[i]);
      data.values.push_back(all.values[i]);
    }
  }
  return data;
}

std::vector<size_t> ThreadSweep(size_t max_threads) {
  std::vector<size_t> sweep;
  for (size_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

template <typename Inner>
std::unique_ptr<ShardedIndex<Inner>> MakeSharded(const Config& cfg,
                                                 const LoadedData& data) {
  using Engine = ShardedIndex<Inner>;
  typename Engine::Options sopts;
  sopts.num_shards = cfg.num_shards;
  sopts.build_threads = cfg.max_threads;
  auto index = std::make_unique<Engine>(sopts);
  index->BulkLoad(data.keys, data.values);
  return index;
}

JsonRow ResultRow(const std::string& section, const std::string& engine,
                  YcsbMix mix, const std::string& dist, size_t threads,
                  const WorkloadResult& r) {
  return JsonRow{
      JsonField::Str("section", section),
      JsonField::Str("engine", engine),
      JsonField::Str("mix", YcsbMixName(mix)),
      JsonField::Str("dist", dist),
      JsonField::Num("threads", threads),
      JsonField::Num("mops", r.mops),
      JsonField::Num("read_p50_ns", r.read.p50_ns),
      JsonField::Num("read_p99_ns", r.read.p99_ns),
      JsonField::Num("read_p999_ns", r.read.p999_ns),
      JsonField::Num("insert_p50_ns", r.insert.p50_ns),
      JsonField::Num("insert_p99_ns", r.insert.p99_ns),
      JsonField::Num("insert_p999_ns", r.insert.p999_ns),
      JsonField::Num("scan_p99_ns", r.scan.p99_ns),
      JsonField::Num("found", r.found),
  };
}

std::string Ns(double v) { return TablePrinter::FormatDouble(v / 1e3, 1); }

// One fully-fresh serving run: build, load, drive, tear down.
template <typename Engine, typename BuildFn>
WorkloadResult RunConfig(const LoadedData& data, const WorkloadOptions& opts,
                         BuildFn&& build) {
  Engine engine = build();
  return RunYcsb(&engine, data.keys, data.pool, opts);
}

}  // namespace
}  // namespace lidx

int main(int argc, char** argv) {
  using namespace lidx;
  Config cfg;
  if (argc > 1) cfg.n_keys = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.ops_per_thread = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) cfg.num_shards = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) cfg.max_threads = std::strtoull(argv[4], nullptr, 10);
  if (cfg.max_threads == 0) {
    cfg.max_threads = std::max(1u, std::thread::hardware_concurrency());
  }

  bench::PrintHeader(
      "E21 - Sharded concurrent serving (YCSB, epoch reclamation)",
      "readers scale near-linearly with threads; insert p999 has no "
      "writer-stall cliff");
  std::printf("keys=%zu ops/thread=%zu shards=%zu max_threads=%zu\n",
              cfg.n_keys, cfg.ops_per_thread, cfg.num_shards,
              cfg.max_threads);

  // Insert pool: worst mix is 5% inserts (D/E); budget 10% + slack so the
  // generator's pool check never trips.
  const size_t pool_size =
      cfg.ops_per_thread * cfg.max_threads / 10 + 64 * cfg.max_threads;
  const LoadedData data = MakeServingData(cfg.n_keys, pool_size);
  std::printf("loaded=%zu insert_pool=%zu\n", data.keys.size(),
              data.pool.size());

  using Sharded = ShardedIndex<DynamicPgm<uint64_t, uint64_t>>;

  std::vector<JsonRow> rows;

  // ---- Section 1: thread sweep, ShardedIndex<DynamicPgm>, A/B/C ----
  TablePrinter sweep_table({"mix", "dist", "threads", "Mops/s", "read p50us",
                            "read p999us", "ins p50us", "ins p999us"});
  double c_uniform_1t = 0.0;
  double c_uniform_max = 0.0;
  double a_p50 = 0.0;
  double a_p999 = 0.0;
  const std::vector<size_t> sweep = ThreadSweep(cfg.max_threads);
  for (const YcsbMix mix : {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC}) {
    for (const double theta : {0.0, 0.99}) {
      const std::string dist = theta == 0.0 ? "uniform" : "zipf0.99";
      for (const size_t threads : sweep) {
        Sharded::Options sopts;
        sopts.num_shards = cfg.num_shards;
        sopts.build_threads = cfg.max_threads;
        Sharded index(sopts);
        index.BulkLoad(data.keys, data.values);
        WorkloadOptions wopts;
        wopts.mix = mix;
        wopts.zipf_theta = theta;
        wopts.n_threads = threads;
        wopts.ops_per_thread = cfg.ops_per_thread;
        const WorkloadResult r = RunYcsb(&index, data.keys, data.pool, wopts);
        index.WaitForDrains();
        sweep_table.AddRow(
            {YcsbMixName(mix), dist, std::to_string(threads),
             TablePrinter::FormatDouble(r.mops, 2), Ns(r.read.p50_ns),
             Ns(r.read.p999_ns), Ns(r.insert.p50_ns), Ns(r.insert.p999_ns)});
        rows.push_back(ResultRow("thread_sweep", "sharded_dpgm", mix, dist,
                                 threads, r));
        if (mix == YcsbMix::kC && theta == 0.0) {
          if (threads == 1) c_uniform_1t = r.mops;
          if (threads == cfg.max_threads) c_uniform_max = r.mops;
        }
        if (mix == YcsbMix::kA && theta == 0.0 &&
            threads == cfg.max_threads) {
          a_p50 = r.insert.p50_ns;
          a_p999 = r.insert.p999_ns;
        }
      }
    }
  }
  sweep_table.Print();

  // ---- Section 2: all six mixes at max threads ----
  std::printf("\nAll mixes, %zu threads, zipf 0.99 vs uniform:\n",
              cfg.max_threads);
  TablePrinter mix_table({"mix", "dist", "Mops/s", "read p999us",
                          "ins p999us", "scan p99us"});
  for (const YcsbMix mix : {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC,
                            YcsbMix::kD, YcsbMix::kE, YcsbMix::kF}) {
    for (const double theta : {0.0, 0.99}) {
      const std::string dist = theta == 0.0 ? "uniform" : "zipf0.99";
      Sharded::Options sopts;
      sopts.num_shards = cfg.num_shards;
      sopts.build_threads = cfg.max_threads;
      Sharded index(sopts);
      index.BulkLoad(data.keys, data.values);
      WorkloadOptions wopts;
      wopts.mix = mix;
      wopts.zipf_theta = theta;
      wopts.n_threads = cfg.max_threads;
      // Scans are ~100x the cost of a point op; shrink E's op count to
      // keep runtime flat across rows.
      wopts.ops_per_thread =
          mix == YcsbMix::kE ? std::max<size_t>(1, cfg.ops_per_thread / 20)
                             : cfg.ops_per_thread;
      const WorkloadResult r = RunYcsb(&index, data.keys, data.pool, wopts);
      index.WaitForDrains();
      mix_table.AddRow({YcsbMixName(mix), dist,
                        TablePrinter::FormatDouble(r.mops, 2),
                        Ns(r.read.p999_ns), Ns(r.insert.p999_ns),
                        Ns(r.scan.p99_ns)});
      rows.push_back(
          ResultRow("all_mixes", "sharded_dpgm", mix, dist,
                    cfg.max_threads, r));
    }
  }
  mix_table.Print();

  // ---- Section 3: inner-index comparison + global-lock baseline ----
  std::printf("\nEngine comparison, YCSB-A and YCSB-C, %zu threads:\n",
              cfg.max_threads);
  TablePrinter engine_table({"engine", "mix", "Mops/s", "read p999us",
                             "ins p999us"});
  const auto run_engine = [&](const std::string& name, auto&& make,
                              YcsbMix mix) {
    auto index = make();
    WorkloadOptions wopts;
    wopts.mix = mix;
    wopts.zipf_theta = 0.0;
    wopts.n_threads = cfg.max_threads;
    wopts.ops_per_thread = cfg.ops_per_thread;
    const WorkloadResult r = RunYcsb(index.get(), data.keys, data.pool, wopts);
    engine_table.AddRow({name, YcsbMixName(mix),
                         TablePrinter::FormatDouble(r.mops, 2),
                         Ns(r.read.p999_ns), Ns(r.insert.p999_ns)});
    rows.push_back(
        ResultRow("engines", name, mix, "uniform", cfg.max_threads, r));
  };
  for (const YcsbMix mix : {YcsbMix::kC, YcsbMix::kA}) {
    run_engine("sharded_dpgm", [&] {
      return MakeSharded<DynamicPgm<uint64_t, uint64_t>>(cfg, data);
    }, mix);
    run_engine("sharded_alex", [&] {
      return MakeSharded<AlexIndex<uint64_t, uint64_t>>(cfg, data);
    }, mix);
    run_engine("sharded_lipp", [&] {
      return MakeSharded<LippIndex<uint64_t, uint64_t>>(cfg, data);
    }, mix);
    run_engine("sharded_btree", [&] {
      return MakeSharded<BPlusTree<uint64_t, uint64_t>>(cfg, data);
    }, mix);
    run_engine("concurrent_xindex", [&] {
      auto index =
          std::make_unique<ConcurrentLearnedIndex<uint64_t, uint64_t>>();
      index->BulkLoad(data.keys, data.values);
      return index;
    }, mix);
    run_engine("global_lock_btree", [&] {
      auto index = std::make_unique<
          serving::GlobalLockIndex<BPlusTree<uint64_t, uint64_t>>>();
      std::vector<std::pair<uint64_t, uint64_t>> pairs(data.keys.size());
      for (size_t i = 0; i < data.keys.size(); ++i) {
        pairs[i] = {data.keys[i], data.values[i]};
      }
      index->underlying().BulkLoad(pairs);
      return index;
    }, mix);
  }
  engine_table.Print();

  // ---- Acceptance summary ----
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const double linear = c_uniform_max /
                        (c_uniform_1t * static_cast<double>(cfg.max_threads));
  const double stall_ratio = a_p50 > 0 ? a_p999 / a_p50 : 0.0;
  std::printf(
      "\nAcceptance: YCSB-C uniform scaling %.2fx linear at %zu threads "
      "(target >= 0.70); YCSB-A insert p999/p50 = %.1fx (target <= 10x)\n",
      linear, cfg.max_threads, stall_ratio);
  if (cfg.max_threads > hw) {
    std::printf(
        "note: %zu threads oversubscribe %zu hardware thread(s); scaling and "
        "tail targets are only meaningful at <= hw threads\n",
        cfg.max_threads, hw);
  }

  bench::ReportJson(
      "e21", rows,
      {JsonField::Str("experiment", "sharded_serving_ycsb"),
       JsonField::Num("n_keys", cfg.n_keys),
       JsonField::Num("ops_per_thread", cfg.ops_per_thread),
       JsonField::Num("num_shards", cfg.num_shards),
       JsonField::Num("max_threads", cfg.max_threads),
       JsonField::Num("hw_concurrency", hw),
       JsonField::Num("read_scaling_x_linear", linear),
       JsonField::Num("ycsb_a_insert_p999_over_p50", stall_ratio)});
  return 0;
}
