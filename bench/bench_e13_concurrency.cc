// E13 — Concurrency: XIndex-style concurrent learned index vs a
// mutex-wrapped B+-tree, on the shared YCSB driver.
//
// Tutorial claim (§6.5): concurrency is an open challenge for learned
// indexes; XIndex-style designs show that a static learned top layer plus
// per-shard deltas gives lock-free routing and shard-local writer
// contention, so read-mostly workloads scale with threads while a single
// global lock does not. Note: on a single-core host the absolute scaling
// is bounded by the hardware; the shape to check is the *relative* gap
// between the concurrent learned index and the globally locked baseline
// as thread count grows.
//
// E13 and E21 share src/serving/workload.h (mix definitions, per-op
// latency capture) and the BENCH_* JSON row schema, so their numbers
// compare directly: this experiment isolates the ConcurrentLearnedIndex
// structure, E21 measures the full sharded serving layer.
//
// Usage: bench_e13_concurrency [n_keys] [ops_per_thread] [max_threads]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/stats.h"
#include "one_d/concurrent_index.h"
#include "serving/workload.h"

namespace lidx {
namespace {

using bench::JsonField;
using bench::JsonRow;
using serving::GlobalLockIndex;
using serving::RunYcsb;
using serving::WorkloadOptions;
using serving::WorkloadResult;
using serving::YcsbMix;
using serving::YcsbMixName;

std::string Us(double ns) { return TablePrinter::FormatDouble(ns / 1e3, 1); }

JsonRow ResultRow(const std::string& engine, YcsbMix mix, size_t threads,
                  const WorkloadResult& r) {
  return JsonRow{
      JsonField::Str("engine", engine),
      JsonField::Str("mix", YcsbMixName(mix)),
      JsonField::Str("dist", "uniform"),
      JsonField::Num("threads", threads),
      JsonField::Num("mops", r.mops),
      JsonField::Num("read_p50_ns", r.read.p50_ns),
      JsonField::Num("read_p99_ns", r.read.p99_ns),
      JsonField::Num("read_p999_ns", r.read.p999_ns),
      JsonField::Num("insert_p50_ns", r.insert.p50_ns),
      JsonField::Num("insert_p99_ns", r.insert.p99_ns),
      JsonField::Num("insert_p999_ns", r.insert.p999_ns),
      JsonField::Num("found", r.found),
  };
}

}  // namespace
}  // namespace lidx

int main(int argc, char** argv) {
  using namespace lidx;
  size_t n_keys = 1'000'000;
  size_t ops_per_thread = 200'000;
  size_t max_threads = std::max(1u, std::thread::hardware_concurrency());
  if (argc > 1) n_keys = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) ops_per_thread = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) max_threads = std::strtoull(argv[3], nullptr, 10);

  bench::PrintHeader(
      "E13 - Concurrency: concurrent learned index vs global-lock B+-tree",
      "per-shard deltas + lock-free frozen reads scale with threads; a "
      "global lock does not");

  // Same data recipe as E21: lognormal keys, inserts interleaved in key
  // space via a peeled-off pool.
  const size_t pool_size = ops_per_thread * max_threads / 2 + 64 * max_threads;
  bench::Dataset1D all =
      bench::MakeDataset1D(KeyDistribution::kLognormal, n_keys + pool_size,
                           42, bench::ValueScheme::kHashed);
  std::vector<uint64_t> keys, values, pool;
  keys.reserve(n_keys);
  values.reserve(n_keys);
  pool.reserve(pool_size);
  const size_t stride = (n_keys + pool_size) / pool_size;
  for (size_t i = 0; i < all.keys.size(); ++i) {
    if (i % stride == stride - 1 && pool.size() < pool_size) {
      pool.push_back(all.keys[i]);
    } else {
      keys.push_back(all.keys[i]);
      values.push_back(all.values[i]);
    }
  }
  std::printf("keys=%zu ops/thread=%zu max_threads=%zu\n", keys.size(),
              ops_per_thread, max_threads);

  std::vector<size_t> sweep;
  for (size_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  std::vector<JsonRow> rows;
  TablePrinter table({"engine", "mix", "threads", "Mops/s", "read p50us",
                      "read p999us", "ins p999us"});
  // A = update-heavy (worst case for the global lock), B = read-mostly
  // (the XIndex sweet spot), C = read-only (pure scaling).
  for (const YcsbMix mix : {YcsbMix::kC, YcsbMix::kB, YcsbMix::kA}) {
    for (const size_t threads : sweep) {
      WorkloadOptions wopts;
      wopts.mix = mix;
      wopts.zipf_theta = 0.0;
      wopts.n_threads = threads;
      wopts.ops_per_thread = ops_per_thread;
      {
        ConcurrentLearnedIndex<uint64_t, uint64_t> index;
        index.BulkLoad(keys, values);
        const WorkloadResult r = RunYcsb(&index, keys, pool, wopts);
        table.AddRow({"concurrent_learned", YcsbMixName(mix),
                      std::to_string(threads),
                      TablePrinter::FormatDouble(r.mops, 2),
                      Us(r.read.p50_ns), Us(r.read.p999_ns),
                      Us(r.insert.p999_ns)});
        rows.push_back(ResultRow("concurrent_learned", mix, threads, r));
      }
      {
        GlobalLockIndex<BPlusTree<uint64_t, uint64_t>> baseline;
        std::vector<std::pair<uint64_t, uint64_t>> pairs(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          pairs[i] = {keys[i], values[i]};
        }
        baseline.underlying().BulkLoad(pairs);
        const WorkloadResult r = RunYcsb(&baseline, keys, pool, wopts);
        table.AddRow({"global_lock_btree", YcsbMixName(mix),
                      std::to_string(threads),
                      TablePrinter::FormatDouble(r.mops, 2),
                      Us(r.read.p50_ns), Us(r.read.p999_ns),
                      Us(r.insert.p999_ns)});
        rows.push_back(ResultRow("global_lock_btree", mix, threads, r));
      }
    }
  }
  table.Print();

  bench::ReportJson("e13", rows,
                    {JsonField::Str("experiment", "concurrency_ycsb"),
                     JsonField::Num("n_keys", n_keys),
                     JsonField::Num("ops_per_thread", ops_per_thread),
                     JsonField::Num("max_threads", max_threads)});
  return 0;
}
