// E13 — Concurrency: sharded learned index vs a mutex-wrapped B+-tree.
//
// Tutorial claim (§6.5): concurrency is an open challenge for learned
// indexes; XIndex-style designs show that a static learned top layer plus
// per-shard deltas gives lock-free routing and shard-local writer
// contention, so read-mostly workloads scale with threads while a single
// global lock does not. Note: on a single-core host the absolute scaling
// is bounded by the hardware; the shape to check is the *relative* gap
// between the sharded learned index and the globally locked baseline as
// thread count grows.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/btree.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "one_d/concurrent_index.h"

namespace lidx {
namespace {

constexpr size_t kNumKeys = 1'000'000;
constexpr size_t kOpsPerThread = 200'000;

// Runs `threads` workers doing `read_fraction` reads / rest inserts.
// Returns total Mops/s.
template <typename ReadFn, typename InsertFn>
double RunThreads(int threads, double read_fraction, ReadFn read,
                  InsertFn insert, const std::vector<uint64_t>& keys) {
  std::atomic<uint64_t> sink{0};
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1919 + t);
      uint64_t local = 0;
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        if (rng.NextDouble() < read_fraction) {
          local += read(keys[rng.NextBounded(keys.size())]);
        } else {
          insert((static_cast<uint64_t>(t) << 48) + i, i);
        }
      }
      sink.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = timer.ElapsedSeconds();
  DoNotOptimize(sink.load());
  return static_cast<double>(kOpsPerThread) * threads / seconds / 1e6;
}

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E13: concurrent access (1M keys; XIndex-style sharded learned index "
      "vs globally locked B+-tree)",
      "lock-free learned routing + shard-local locks beat a global lock as "
      "threads grow (relative gap; absolute scaling is hardware-bound)");

  const bench::Dataset1D data =
      bench::MakeDataset1D(KeyDistribution::kUniform, kNumKeys, 2020);
  const std::vector<uint64_t>& keys = data.keys;
  const std::vector<uint64_t>& values = data.values;

  TablePrinter table({"threads", "mix", "learned-sharded Mops/s",
                      "locked-b+tree Mops/s"});
  for (int threads : {1, 2, 4}) {
    for (double read_fraction : {1.0, 0.9}) {
      ConcurrentLearnedIndex<uint64_t, uint64_t> learned;
      learned.BulkLoad(keys, values);

      BPlusTree<uint64_t, uint64_t> tree;
      tree.BulkLoad(bench::ToPairs(data));
      std::mutex tree_mutex;

      const double learned_mops = RunThreads(
          threads, read_fraction,
          [&](uint64_t k) -> uint64_t { return learned.Find(k).value_or(0); },
          [&](uint64_t k, uint64_t v) { learned.Insert(k, v); }, keys);
      const double locked_mops = RunThreads(
          threads, read_fraction,
          [&](uint64_t k) -> uint64_t {
            std::lock_guard<std::mutex> lock(tree_mutex);
            return tree.Find(k).value_or(0);
          },
          [&](uint64_t k, uint64_t v) {
            std::lock_guard<std::mutex> lock(tree_mutex);
            tree.Insert(k, v);
          },
          keys);
      table.AddRow({std::to_string(threads),
                    read_fraction == 1.0 ? "read-only" : "90/10",
                    TablePrinter::FormatDouble(learned_mops, 2),
                    TablePrinter::FormatDouble(locked_mops, 2)});
    }
  }
  table.Print();
  return 0;
}
