// E19 — Disk-resident learned indexes: paged storage, buffer pool, and
// models in memory.
//
// Claim under test (tutorial §4.2/§5 disk-based systems — FITing-tree,
// BOURBON, the PGM family): when data lives in pages on disk and only the
// model fits in memory, a learned index's ε bound translates directly into
// I/O — a point lookup reads only the pages overlapping the ε-window, so
// tightening ε shrinks pages-read per lookup toward the B+-style
// fence-directory baseline of exactly one page, while the model needs far
// less memory than one fence key per page. A buffer pool in front of the
// page file then converts re-reference locality into hits: hit rate rises
// with pool size until the working set fits, and warm lookups cost memory
// latencies instead of page reads.
//
// Sections:
//   1. ε sweep (DiskPgmTable, model-only search) vs fence-binary baseline:
//      pages/lookup must shrink monotonically as ε tightens.
//   2. Buffer-pool size sweep (uniform lookups): hit rate must rise with
//      the frame count.
//   3. Cold vs warm cache at a working-set-sized pool.
//   4. DiskLsmTree end-to-end: load (sync vs background compaction),
//      point-lookup I/O, and space recycling in the page file.
//
// Usage: bench_e19_disk_resident [num_keys]   (default 2M; CI smoke: 20000)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/invariants.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "storage/buffer_pool.h"
#include "storage/disk_lsm_tree.h"
#include "storage/disk_pgm_table.h"
#include "storage/file_manager.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace lidx::storage {
namespace {

std::vector<bench::JsonRow> g_json;

// Page files are scratch state: created fresh, removed on exit.
std::string ScratchFile(const std::string& tag) {
  const std::string path = "bench_e19_" + tag + ".pagefile";
  std::remove(path.c_str());
  return path;
}

std::vector<uint64_t> SampleHits(const std::vector<uint64_t>& keys, size_t n,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (uint64_t& k : out) k = keys[rng.NextBounded(keys.size())];
  return out;
}

// ----- Section 1: ε sweep — pages read per lookup vs model memory -----

void RunEpsilonSweep(const bench::Dataset1D& data,
                     const std::vector<uint64_t>& lookups) {
  std::printf("\n-- epsilon sweep: pages/lookup vs navigational memory --\n");
  TablePrinter table({"mode", "epsilon", "pages/lookup", "steps/lookup",
                      "model_bytes", "fence_bytes", "ns/lookup"});
  const auto run = [&](DiskSearchMode mode, size_t eps, const char* name) {
    FileManager file(ScratchFile("eps"));
    // Pool sized to the whole table: this section isolates pages *touched*
    // (requested I/O) from caching effects, which sections 2-3 cover.
    BufferPool pool(&file,
                    data.keys.size() / DiskPgmTable<uint64_t, uint64_t>::
                                           kRecordsPerPage +
                        16);
    typename DiskPgmTable<uint64_t, uint64_t>::Options opts;
    opts.mode = mode;
    opts.epsilon = eps;
    DiskPgmTable<uint64_t, uint64_t> table_disk(data.keys, data.values, &file,
                                                &pool, opts);
    DiskIoStats io;
    uint64_t sink = 0;
    for (const uint64_t k : lookups) {
      sink += table_disk.Find(k, &io).value_or(0);
    }
    DoNotOptimize(sink);
    const double per =
        static_cast<double>(io.pages_touched) / lookups.size();
    const double steps =
        static_cast<double>(io.search_steps) / lookups.size();
    const double ns = bench::MeasureNsPerOp(lookups.size(), [&](size_t i) {
      DoNotOptimize(table_disk.Find(lookups[i], nullptr));
    });
    table.AddRow({name, std::to_string(eps),
                  TablePrinter::FormatDouble(per, 3),
                  TablePrinter::FormatDouble(steps, 1),
                  TablePrinter::FormatBytes(table_disk.ModelSizeBytes()),
                  TablePrinter::FormatBytes(table_disk.FenceSizeBytes()),
                  TablePrinter::FormatDouble(ns, 0)});
    g_json.push_back(
        {bench::JsonField::Str("section", "epsilon_sweep"),
         bench::JsonField::Str("mode", name),
         bench::JsonField::Num("epsilon", eps),
         bench::JsonField::Num("pages_per_lookup", per),
         bench::JsonField::Num("steps_per_lookup", steps),
         bench::JsonField::Num("model_bytes", table_disk.ModelSizeBytes()),
         bench::JsonField::Num("fence_bytes", table_disk.FenceSizeBytes()),
         bench::JsonField::Num("ns_per_lookup", ns)});
  };
  run(DiskSearchMode::kFenceBinary, 64, "fence-binary");
  for (const size_t eps : {16u, 64u, 256u, 1024u}) {
    run(DiskSearchMode::kLearned, eps, "learned");
  }
  table.Print();
}

// ----- Sections 2-3: buffer pool — hit rate vs frames, cold vs warm -----

void RunPoolSweep(const bench::Dataset1D& data,
                  const std::vector<uint64_t>& lookups) {
  std::printf("\n-- buffer-pool sweep: hit rate vs frames (uniform reads) "
              "--\n");
  TablePrinter table({"frames", "pool_mib", "hit_rate", "evictions",
                      "cold_ns", "warm_ns"});
  const size_t table_pages =
      data.keys.size() / DiskPgmTable<uint64_t, uint64_t>::kRecordsPerPage + 1;
  for (const size_t divisor : {64u, 16u, 4u, 2u, 1u}) {
    const size_t frames = std::max<size_t>(16, table_pages / divisor);
    FileManager file(ScratchFile("pool"));
    BufferPool pool(&file, frames);
    typename DiskPgmTable<uint64_t, uint64_t>::Options opts;
    opts.mode = DiskSearchMode::kFenceBinary;  // Exactly 1 page per lookup.
    DiskPgmTable<uint64_t, uint64_t> disk(data.keys, data.values, &file,
                                          &pool, opts);
    // Cold pass: the pool starts empty (builds write through the
    // FileManager, not the pool).
    uint64_t sink = 0;
    Timer cold_timer;
    for (const uint64_t k : lookups) {
      sink += disk.Find(k, nullptr).value_or(0);
    }
    const double cold_ns = static_cast<double>(cold_timer.ElapsedNanos()) /
                           static_cast<double>(lookups.size());
    pool.ResetStats();
    // Warm pass: steady-state hit rate at this pool size.
    Timer warm_timer;
    for (const uint64_t k : lookups) {
      sink += disk.Find(k, nullptr).value_or(0);
    }
    const double warm_ns = static_cast<double>(warm_timer.ElapsedNanos()) /
                           static_cast<double>(lookups.size());
    DoNotOptimize(sink);
    const BufferPoolStats stats = pool.stats();
    const double hit_rate =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
    table.AddRow({std::to_string(frames),
                  TablePrinter::FormatDouble(
                      static_cast<double>(frames * kPageSize) / (1 << 20), 1),
                  TablePrinter::FormatDouble(hit_rate, 3),
                  std::to_string(stats.evictions),
                  TablePrinter::FormatDouble(cold_ns, 0),
                  TablePrinter::FormatDouble(warm_ns, 0)});
    g_json.push_back(
        {bench::JsonField::Str("section", "pool_sweep"),
         bench::JsonField::Num("frames", frames),
         bench::JsonField::Num("table_pages", table_pages),
         bench::JsonField::Num("hit_rate", hit_rate),
         bench::JsonField::Num("evictions", stats.evictions),
         bench::JsonField::Num("cold_ns_per_lookup", cold_ns),
         bench::JsonField::Num("warm_ns_per_lookup", warm_ns)});
  }
  table.Print();
}

// ----- Section 4: DiskLsmTree end-to-end -----

void RunLsm(const bench::Dataset1D& data,
            const std::vector<uint64_t>& lookups) {
  std::printf("\n-- disk LSM: load, lookup I/O, space recycling --\n");
  TablePrinter table({"compaction", "path", "load_ms", "runs", "file_mib",
                      "pages/get", "syscalls/get", "hit_rate", "ns/get"});
  // Random insertion order exercises flush + compaction realistically.
  std::vector<uint64_t> shuffled = data.keys;
  Rng rng(5150);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  for (const bool background : {false, true}) {
    typename DiskLsmTree<uint64_t, uint64_t>::Options opts;
    opts.memtable_limit = 64 * 1024;
    opts.pool_frames = 4096;
    opts.background_compaction = background;
    const std::string path = ScratchFile(background ? "lsm_bg" : "lsm_sync");
    DiskLsmTree<uint64_t, uint64_t> lsm(path, opts);
    const double load_ms = bench::MeasureMs([&] {
      for (size_t i = 0; i < shuffled.size(); ++i) {
        lsm.Put(shuffled[i], shuffled[i] ^ 0x9E3779B9u);
      }
      lsm.Flush();
      lsm.WaitForCompactions();
    });
    lsm.ResetStats();
    lsm.pool().ResetStats();
    uint64_t sink = 0;
    const uint64_t scalar_sys_before = lsm.file().read_syscalls();
    std::vector<std::optional<uint64_t>> scalar_out(lookups.size());
    const double ns = bench::MeasureNsPerOp(lookups.size(), [&](size_t i) {
      scalar_out[i] = lsm.Get(lookups[i]);
      sink += scalar_out[i].value_or(0);
    });
    DoNotOptimize(sink);
    const double n_lookups = static_cast<double>(lookups.size());
    const double pages_per_get =
        static_cast<double>(lsm.stats().pages_touched) / n_lookups;
    // MeasureNsPerOp prepends a warmup pass, so this slightly overcounts
    // per-lookup syscalls; the same ops also inflate pages_per_get above.
    const double scalar_syscalls_per_get =
        static_cast<double>(lsm.file().read_syscalls() - scalar_sys_before) /
        n_lookups;
    const BufferPoolStats pstats = lsm.pool().stats();
    const double hit_rate =
        pstats.hits + pstats.misses == 0
            ? 0.0
            : static_cast<double>(pstats.hits) /
                  static_cast<double>(pstats.hits + pstats.misses);
    const double file_mib =
        static_cast<double>(lsm.file().NumPages() * kPageSize) / (1 << 20);
    const double bytes_per_key =
        bench::BytesPerKey(bench::FileSizeBytes(path), data.keys.size());
    const char* mode = background ? "background" : "sync";
    table.AddRow({mode, "scalar", TablePrinter::FormatDouble(load_ms, 0),
                  std::to_string(lsm.NumRuns()),
                  TablePrinter::FormatDouble(file_mib, 1),
                  TablePrinter::FormatDouble(pages_per_get, 3),
                  TablePrinter::FormatDouble(scalar_syscalls_per_get, 4),
                  TablePrinter::FormatDouble(hit_rate, 3),
                  TablePrinter::FormatDouble(ns, 0)});
    g_json.push_back(
        {bench::JsonField::Str("section", "lsm"),
         bench::JsonField::Str("mode", mode),
         bench::JsonField::Num("load_ms", load_ms),
         bench::JsonField::Num("file_mib", file_mib),
         bench::JsonField::Num("bytes_per_key", bytes_per_key),
         bench::JsonField::Num("pages_per_get", pages_per_get),
         bench::JsonField::Num("syscalls_per_get", scalar_syscalls_per_get),
         bench::JsonField::Num("hit_rate", hit_rate),
         bench::JsonField::Num("ns_per_get", ns)});
    // Batched pass over the same lookups: the async GetBatch path. Warm
    // pool, so this isolates the scheduler + engine overhead (E22 covers
    // the cold-read payoff); the result check keeps the two paths honest.
    lsm.ResetStats();
    const uint64_t batched_sys_before = lsm.file().read_syscalls();
    std::vector<std::optional<uint64_t>> batched_out(lookups.size());
    Timer batched_timer;
    lsm.GetBatch(lookups.data(), lookups.size(), batched_out.data());
    const double batched_ns =
        static_cast<double>(batched_timer.ElapsedNanos()) / n_lookups;
    for (size_t i = 0; i < lookups.size(); ++i) {
      LIDX_CHECK(batched_out[i] == scalar_out[i]);
    }
    const DiskIoStats& bio = lsm.stats();
    const AsyncIoStats& eng = lsm.io_engine()->stats();
    const double batched_pages_per_get =
        static_cast<double>(bio.pages_touched) / n_lookups;
    const double batched_syscalls_per_get =
        static_cast<double>(
            eng.submit_syscalls +
            (lsm.file().read_syscalls() - batched_sys_before)) /
        n_lookups;
    table.AddRow({mode, lsm.io_engine()->name(), "-",
                  std::to_string(lsm.NumRuns()),
                  TablePrinter::FormatDouble(file_mib, 1),
                  TablePrinter::FormatDouble(batched_pages_per_get, 3),
                  TablePrinter::FormatDouble(batched_syscalls_per_get, 4),
                  "-", TablePrinter::FormatDouble(batched_ns, 0)});
    g_json.push_back(
        {bench::JsonField::Str("section", "lsm_batched"),
         bench::JsonField::Str("mode", mode),
         bench::JsonField::Str("io_backend", lsm.io_engine()->name()),
         bench::JsonField::Num("pages_per_get", batched_pages_per_get),
         bench::JsonField::Num("syscalls_per_get", batched_syscalls_per_get),
         bench::JsonField::Num("batched_lookups", bio.batched_lookups),
         bench::JsonField::Num("async_page_reads", bio.async_page_reads),
         bench::JsonField::Num("async_reads_submitted", eng.reads_submitted),
         bench::JsonField::Num("ns_per_get", batched_ns)});
  }
  table.Print();
}

}  // namespace
}  // namespace lidx::storage

int main(int argc, char** argv) {
  using namespace lidx;
  using namespace lidx::storage;
  const size_t n =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 2'000'000;
  bench::PrintHeader(
      "E19: disk-resident storage engine (" + std::to_string(n) +
          " lognormal keys, 4 KiB pages)",
      "with data on disk and models in memory, ε bounds pages-read per "
      "lookup; a buffer pool converts locality into hits");

  const bench::Dataset1D data =
      bench::MakeDataset1D(KeyDistribution::kLognormal, n, 4242,
                           bench::ValueScheme::kHashed);
  const size_t num_lookups = std::min<size_t>(n, 200'000);
  const auto lookups = SampleHits(data.keys, num_lookups, 77);

  RunEpsilonSweep(data, lookups);
  RunPoolSweep(data, lookups);
  RunLsm(data, lookups);

  bench::ReportJson("e19_disk_resident", g_json,
                    {bench::JsonField::Num("num_keys", n),
                     bench::JsonField::Num("num_lookups", num_lookups),
                     bench::JsonField::Num("page_size", kPageSize)});
  for (const char* tag : {"eps", "pool", "lsm_sync", "lsm_bg"}) {
    std::remove(("bench_e19_" + std::string(tag) + ".pagefile").c_str());
  }
  return 0;
}
