// E11 — Workload-aware layouts: Qd-tree vs workload-oblivious layouts.
//
// Tutorial claim (§5.2): learning the data layout from the query workload
// (Qd-tree) reduces the blocks/records a scan-based engine must read,
// compared to workload-oblivious layouts (fixed grid blocks, Z-order
// pages). Expected shape: on a skewed workload the Qd-tree scans several
// times fewer records per query; on queries unlike the training workload
// the gap narrows but exactness is preserved.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "multi_d/qd_tree.h"
#include "sfc/morton.h"
#include "spatial/geometry.h"

namespace lidx {
namespace {

constexpr size_t kNumPoints = 500'000;
constexpr size_t kBlockSize = 512;

// Workload-oblivious baseline: points sorted by Z-order, cut into fixed
// pages of kBlockSize; a query scans every page whose MBR intersects it.
struct ZOrderLayout {
  struct Page {
    Rect mbr;
    std::vector<uint32_t> ids;
  };
  std::vector<Page> pages;
  const std::vector<Point2D>* points = nullptr;

  void Build(const std::vector<Point2D>& pts) {
    points = &pts;
    std::vector<std::pair<uint64_t, uint32_t>> coded(pts.size());
    for (uint32_t i = 0; i < pts.size(); ++i) {
      coded[i] = {sfc::MortonEncode2D(sfc::Quantize(pts[i].x, 20),
                                      sfc::Quantize(pts[i].y, 20)),
                  i};
    }
    std::sort(coded.begin(), coded.end());
    for (size_t start = 0; start < coded.size(); start += kBlockSize) {
      Page page;
      const size_t end = std::min(coded.size(), start + kBlockSize);
      for (size_t i = start; i < end; ++i) {
        page.ids.push_back(coded[i].second);
        page.mbr.Expand(pts[coded[i].second]);
      }
      pages.push_back(std::move(page));
    }
  }

  // Returns (blocks_scanned, records_scanned, results).
  void Query(const RangeQuery2D& q, size_t* blocks, size_t* records,
             size_t* results) const {
    const Rect qr = Rect::FromQuery(q);
    for (const Page& page : pages) {
      if (!qr.Intersects(page.mbr)) continue;
      ++*blocks;
      *records += page.ids.size();
      for (uint32_t id : page.ids) {
        if (q.Contains((*points)[id])) ++*results;
      }
    }
  }
};

}  // namespace
}  // namespace lidx

int main() {
  using namespace lidx;
  bench::PrintHeader(
      "E11: workload-aware layout (Qd-tree) vs Z-order pages (500K points)",
      "learning the layout from the workload cuts blocks/records scanned");

  const auto points =
      GeneratePoints(PointDistribution::kSkewedGrid, kNumPoints, 1414);
  // Skewed workload: small rectangles over the hot region.
  const auto train = GenerateRangeQueries(points, 64, 0.002, 1515);
  const auto test_seen = GenerateRangeQueries(points, 200, 0.002, 1616);
  const auto test_unseen = GenerateRangeQueries(points, 200, 0.02, 1717);

  QdTree qd;
  QdTree::Options qopts;
  qopts.min_block_size = kBlockSize / 2;
  qd.Build(points, train, qopts);

  ZOrderLayout zorder;
  zorder.Build(points);

  TablePrinter table({"workload", "layout", "avg_blocks", "avg_records",
                      "avg_results"});
  for (const auto& [wname, queries] :
       {std::pair{"like-training", &test_seen},
        std::pair{"unseen-wider", &test_unseen}}) {
    size_t qd_blocks = 0, qd_records = 0, qd_results = 0;
    for (const RangeQuery2D& q : *queries) {
      const auto result = qd.RangeQuery(q);
      qd_blocks += result.blocks_scanned;
      qd_records += result.records_scanned;
      qd_results += result.ids.size();
    }
    size_t z_blocks = 0, z_records = 0, z_results = 0;
    for (const RangeQuery2D& q : *queries) {
      zorder.Query(q, &z_blocks, &z_records, &z_results);
    }
    const double n = static_cast<double>(queries->size());
    table.AddRow({wname, "qd-tree",
                  TablePrinter::FormatDouble(qd_blocks / n, 1),
                  TablePrinter::FormatDouble(qd_records / n, 0),
                  TablePrinter::FormatDouble(qd_results / n, 0)});
    table.AddRow({wname, "z-order pages",
                  TablePrinter::FormatDouble(z_blocks / n, 1),
                  TablePrinter::FormatDouble(z_records / n, 0),
                  TablePrinter::FormatDouble(z_results / n, 0)});
  }
  table.Print();
  std::printf("qd-tree leaves: %zu, z-order pages: %zu\n", qd.NumLeaves(),
              zorder.pages.size());
  return 0;
}
