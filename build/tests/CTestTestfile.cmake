# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/sfc_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/one_d_test[1]_include.cmake")
include("/root/repo/build/tests/learned_bloom_test[1]_include.cmake")
include("/root/repo/build/tests/multi_d_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
