file(REMOVE_RECURSE
  "CMakeFiles/learned_bloom_test.dir/learned_bloom_test.cc.o"
  "CMakeFiles/learned_bloom_test.dir/learned_bloom_test.cc.o.d"
  "learned_bloom_test"
  "learned_bloom_test.pdb"
  "learned_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
