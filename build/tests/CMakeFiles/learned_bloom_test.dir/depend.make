# Empty dependencies file for learned_bloom_test.
# This may be replaced when dependencies are built.
