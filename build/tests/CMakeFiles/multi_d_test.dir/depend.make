# Empty dependencies file for multi_d_test.
# This may be replaced when dependencies are built.
