file(REMOVE_RECURSE
  "CMakeFiles/multi_d_test.dir/multi_d_test.cc.o"
  "CMakeFiles/multi_d_test.dir/multi_d_test.cc.o.d"
  "multi_d_test"
  "multi_d_test.pdb"
  "multi_d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
