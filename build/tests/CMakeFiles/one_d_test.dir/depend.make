# Empty dependencies file for one_d_test.
# This may be replaced when dependencies are built.
