file(REMOVE_RECURSE
  "CMakeFiles/one_d_test.dir/one_d_test.cc.o"
  "CMakeFiles/one_d_test.dir/one_d_test.cc.o.d"
  "one_d_test"
  "one_d_test.pdb"
  "one_d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
