file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_point_2d.dir/bench_e07_point_2d.cc.o"
  "CMakeFiles/bench_e07_point_2d.dir/bench_e07_point_2d.cc.o.d"
  "bench_e07_point_2d"
  "bench_e07_point_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_point_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
