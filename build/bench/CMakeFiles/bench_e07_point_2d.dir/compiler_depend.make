# Empty compiler generated dependencies file for bench_e07_point_2d.
# This may be replaced when dependencies are built.
