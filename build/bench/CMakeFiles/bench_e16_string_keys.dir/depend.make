# Empty dependencies file for bench_e16_string_keys.
# This may be replaced when dependencies are built.
