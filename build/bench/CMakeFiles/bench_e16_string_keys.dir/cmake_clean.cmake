file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_string_keys.dir/bench_e16_string_keys.cc.o"
  "CMakeFiles/bench_e16_string_keys.dir/bench_e16_string_keys.cc.o.d"
  "bench_e16_string_keys"
  "bench_e16_string_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_string_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
