# Empty compiler generated dependencies file for bench_a01_alex_ablation.
# This may be replaced when dependencies are built.
