file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_lsm_bourbon.dir/bench_e06_lsm_bourbon.cc.o"
  "CMakeFiles/bench_e06_lsm_bourbon.dir/bench_e06_lsm_bourbon.cc.o.d"
  "bench_e06_lsm_bourbon"
  "bench_e06_lsm_bourbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_lsm_bourbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
