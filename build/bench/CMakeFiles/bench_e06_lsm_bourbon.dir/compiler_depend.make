# Empty compiler generated dependencies file for bench_e06_lsm_bourbon.
# This may be replaced when dependencies are built.
