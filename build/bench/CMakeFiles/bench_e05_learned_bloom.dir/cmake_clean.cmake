file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_learned_bloom.dir/bench_e05_learned_bloom.cc.o"
  "CMakeFiles/bench_e05_learned_bloom.dir/bench_e05_learned_bloom.cc.o.d"
  "bench_e05_learned_bloom"
  "bench_e05_learned_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_learned_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
