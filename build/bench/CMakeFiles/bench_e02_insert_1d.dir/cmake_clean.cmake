file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_insert_1d.dir/bench_e02_insert_1d.cc.o"
  "CMakeFiles/bench_e02_insert_1d.dir/bench_e02_insert_1d.cc.o.d"
  "bench_e02_insert_1d"
  "bench_e02_insert_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_insert_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
