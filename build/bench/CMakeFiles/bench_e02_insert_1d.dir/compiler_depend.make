# Empty compiler generated dependencies file for bench_e02_insert_1d.
# This may be replaced when dependencies are built.
