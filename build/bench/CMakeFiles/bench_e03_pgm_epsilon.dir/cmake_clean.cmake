file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_pgm_epsilon.dir/bench_e03_pgm_epsilon.cc.o"
  "CMakeFiles/bench_e03_pgm_epsilon.dir/bench_e03_pgm_epsilon.cc.o.d"
  "bench_e03_pgm_epsilon"
  "bench_e03_pgm_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_pgm_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
