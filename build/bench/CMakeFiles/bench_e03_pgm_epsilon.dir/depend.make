# Empty dependencies file for bench_e03_pgm_epsilon.
# This may be replaced when dependencies are built.
