file(REMOVE_RECURSE
  "CMakeFiles/bench_a02_flood_tuning.dir/bench_a02_flood_tuning.cc.o"
  "CMakeFiles/bench_a02_flood_tuning.dir/bench_a02_flood_tuning.cc.o.d"
  "bench_a02_flood_tuning"
  "bench_a02_flood_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a02_flood_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
