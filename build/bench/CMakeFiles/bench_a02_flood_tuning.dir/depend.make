# Empty dependencies file for bench_a02_flood_tuning.
# This may be replaced when dependencies are built.
