file(REMOVE_RECURSE
  "CMakeFiles/bench_a04_learned_packing.dir/bench_a04_learned_packing.cc.o"
  "CMakeFiles/bench_a04_learned_packing.dir/bench_a04_learned_packing.cc.o.d"
  "bench_a04_learned_packing"
  "bench_a04_learned_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a04_learned_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
