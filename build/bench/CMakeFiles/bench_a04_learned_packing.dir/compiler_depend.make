# Empty compiler generated dependencies file for bench_a04_learned_packing.
# This may be replaced when dependencies are built.
