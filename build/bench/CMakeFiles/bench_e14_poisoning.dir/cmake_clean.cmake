file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_poisoning.dir/bench_e14_poisoning.cc.o"
  "CMakeFiles/bench_e14_poisoning.dir/bench_e14_poisoning.cc.o.d"
  "bench_e14_poisoning"
  "bench_e14_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
