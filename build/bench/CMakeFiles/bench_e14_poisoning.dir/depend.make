# Empty dependencies file for bench_e14_poisoning.
# This may be replaced when dependencies are built.
