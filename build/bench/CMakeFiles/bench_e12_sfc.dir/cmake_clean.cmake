file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_sfc.dir/bench_e12_sfc.cc.o"
  "CMakeFiles/bench_e12_sfc.dir/bench_e12_sfc.cc.o.d"
  "bench_e12_sfc"
  "bench_e12_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
