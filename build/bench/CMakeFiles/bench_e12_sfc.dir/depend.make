# Empty dependencies file for bench_e12_sfc.
# This may be replaced when dependencies are built.
