# Empty compiler generated dependencies file for bench_e08_range_2d.
# This may be replaced when dependencies are built.
