# Empty compiler generated dependencies file for bench_e01_lookup_1d.
# This may be replaced when dependencies are built.
