file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_learned_hash.dir/bench_e15_learned_hash.cc.o"
  "CMakeFiles/bench_e15_learned_hash.dir/bench_e15_learned_hash.cc.o.d"
  "bench_e15_learned_hash"
  "bench_e15_learned_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_learned_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
