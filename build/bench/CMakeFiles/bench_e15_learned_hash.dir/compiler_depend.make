# Empty compiler generated dependencies file for bench_e15_learned_hash.
# This may be replaced when dependencies are built.
