# Empty dependencies file for bench_a05_sfc_index.
# This may be replaced when dependencies are built.
