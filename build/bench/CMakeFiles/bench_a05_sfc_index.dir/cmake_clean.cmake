file(REMOVE_RECURSE
  "CMakeFiles/bench_a05_sfc_index.dir/bench_a05_sfc_index.cc.o"
  "CMakeFiles/bench_a05_sfc_index.dir/bench_a05_sfc_index.cc.o.d"
  "bench_a05_sfc_index"
  "bench_a05_sfc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a05_sfc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
