file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_qdtree.dir/bench_e11_qdtree.cc.o"
  "CMakeFiles/bench_e11_qdtree.dir/bench_e11_qdtree.cc.o.d"
  "bench_e11_qdtree"
  "bench_e11_qdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_qdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
