# Empty compiler generated dependencies file for bench_e11_qdtree.
# This may be replaced when dependencies are built.
