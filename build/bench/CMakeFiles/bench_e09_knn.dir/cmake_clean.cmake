file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_knn.dir/bench_e09_knn.cc.o"
  "CMakeFiles/bench_e09_knn.dir/bench_e09_knn.cc.o.d"
  "bench_e09_knn"
  "bench_e09_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
