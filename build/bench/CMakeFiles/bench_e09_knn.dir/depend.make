# Empty dependencies file for bench_e09_knn.
# This may be replaced when dependencies are built.
