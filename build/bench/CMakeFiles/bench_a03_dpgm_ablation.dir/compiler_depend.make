# Empty compiler generated dependencies file for bench_a03_dpgm_ablation.
# This may be replaced when dependencies are built.
