file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_insert_2d.dir/bench_e10_insert_2d.cc.o"
  "CMakeFiles/bench_e10_insert_2d.dir/bench_e10_insert_2d.cc.o.d"
  "bench_e10_insert_2d"
  "bench_e10_insert_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_insert_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
