# Empty compiler generated dependencies file for bench_e10_insert_2d.
# This may be replaced when dependencies are built.
