# Empty compiler generated dependencies file for bench_e04_rmi_sweep.
# This may be replaced when dependencies are built.
