# Empty compiler generated dependencies file for bench_e13_concurrency.
# This may be replaced when dependencies are built.
