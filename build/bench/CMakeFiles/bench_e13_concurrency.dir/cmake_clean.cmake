file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_concurrency.dir/bench_e13_concurrency.cc.o"
  "CMakeFiles/bench_e13_concurrency.dir/bench_e13_concurrency.cc.o.d"
  "bench_e13_concurrency"
  "bench_e13_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
