
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bloom.cc" "src/CMakeFiles/lidx_substrate.dir/baselines/bloom.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/baselines/bloom.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/lidx_substrate.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/common/stats.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/lidx_substrate.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/workload.cc" "src/CMakeFiles/lidx_substrate.dir/datasets/workload.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/datasets/workload.cc.o.d"
  "/root/repo/src/models/logistic.cc" "src/CMakeFiles/lidx_substrate.dir/models/logistic.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/models/logistic.cc.o.d"
  "/root/repo/src/sfc/hilbert.cc" "src/CMakeFiles/lidx_substrate.dir/sfc/hilbert.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/sfc/hilbert.cc.o.d"
  "/root/repo/src/sfc/morton.cc" "src/CMakeFiles/lidx_substrate.dir/sfc/morton.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/sfc/morton.cc.o.d"
  "/root/repo/src/sfc/zrange.cc" "src/CMakeFiles/lidx_substrate.dir/sfc/zrange.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/sfc/zrange.cc.o.d"
  "/root/repo/src/sfc/zrange3d.cc" "src/CMakeFiles/lidx_substrate.dir/sfc/zrange3d.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/sfc/zrange3d.cc.o.d"
  "/root/repo/src/spatial/geometry.cc" "src/CMakeFiles/lidx_substrate.dir/spatial/geometry.cc.o" "gcc" "src/CMakeFiles/lidx_substrate.dir/spatial/geometry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
