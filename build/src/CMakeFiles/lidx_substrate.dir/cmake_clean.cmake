file(REMOVE_RECURSE
  "CMakeFiles/lidx_substrate.dir/baselines/bloom.cc.o"
  "CMakeFiles/lidx_substrate.dir/baselines/bloom.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/common/stats.cc.o"
  "CMakeFiles/lidx_substrate.dir/common/stats.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/datasets/generators.cc.o"
  "CMakeFiles/lidx_substrate.dir/datasets/generators.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/datasets/workload.cc.o"
  "CMakeFiles/lidx_substrate.dir/datasets/workload.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/models/logistic.cc.o"
  "CMakeFiles/lidx_substrate.dir/models/logistic.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/sfc/hilbert.cc.o"
  "CMakeFiles/lidx_substrate.dir/sfc/hilbert.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/sfc/morton.cc.o"
  "CMakeFiles/lidx_substrate.dir/sfc/morton.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/sfc/zrange.cc.o"
  "CMakeFiles/lidx_substrate.dir/sfc/zrange.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/sfc/zrange3d.cc.o"
  "CMakeFiles/lidx_substrate.dir/sfc/zrange3d.cc.o.d"
  "CMakeFiles/lidx_substrate.dir/spatial/geometry.cc.o"
  "CMakeFiles/lidx_substrate.dir/spatial/geometry.cc.o.d"
  "liblidx_substrate.a"
  "liblidx_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidx_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
