# Empty dependencies file for lidx_substrate.
# This may be replaced when dependencies are built.
