file(REMOVE_RECURSE
  "liblidx_substrate.a"
)
